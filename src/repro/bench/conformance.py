"""Randomized differential conformance harness for the forwarding pipeline.

Four PRs of deferral/coalescing machinery now interact — send windows,
handle promises, dependency-tracked prefix flushing, ``clFlush``
submission barriers, transfer coalescing in every direction and
coalesced result reads.  Each optimisation is unit-tested in isolation;
what this harness locks down is their *composition*: a seeded generator
builds small workload DAGs (multi-queue kernels, user-event gating,
blocking and non-blocking transfers, ``clFlush``/``clFinish``, mid-run
creation failures, duplicate and failing program builds, iterative
producer->consumer loops) and runs each program under six pipeline
configurations:

* ``sync`` — batching fully disabled, every extension off including
  the program build cache and predictive pushes (one round trip per
  forwarded call: the semantics oracle);
* ``batched`` — send windows, deferred relays and handle promises on,
  every coalescing knob off, pushes off;
* ``coalesced_off`` — the full pipeline with ``coalesce_reads=False``
  (the read-coalescing ablation mirror);
* ``coalesced_on`` — everything on (the shipping default);
* ``cache_off`` — the full pipeline with ``program_cache=False`` (the
  content-addressed build-cache ablation mirror: every build pays the
  synchronous per-server fan-out and no daemon may touch its cache);
* ``push_off`` — the full pipeline with ``push_transfers=False`` (the
  PR-9 ablation mirror: pure demand-driven coherence).  Diffing this
  cell against ``coalesced_on`` is what proves speculative pushes
  never change buffer bytes, directory state or error behaviour.

The paper's headline property is that dOpenCL preserves *unmodified
OpenCL semantics*; the pipeline being "just" a communication
optimisation means every configuration must produce **bit-identical
buffer contents**, **identical coherence-directory state** and the same
error behaviour, while the ``NetStats`` counters obey the structural
invariants each configuration promises (a sync run never batches, an
ablated run never fuses, more machinery never costs more round trips).
Any divergence is reported with the generating seed so the exact
program can be replayed.

The harness also runs **under fire**: ``--faults`` replays every program
against deterministic fault schedules (message drops, delays, truncated
bulk streams, link severs, daemon crashes — see
:mod:`repro.sim.faults`) with the client's retry policy installed.  A
*recoverable* schedule must leave every observable bit-identical to the
fault-free run of the same configuration; an *unrecoverable* schedule
(a crash, a permanently severed link) must fail **deterministically** —
the same ops observe the same ``CL_DEVICE_NOT_AVAILABLE``-class errors
on every run — and never hang (the injector's transfer budget is the
watchdog).

The harness also scales **out**: ``--clients N`` generates
*programs-of-programs* — N independent client programs on disjoint and
overlapping daemon subsets of one shared deployment, interleaved at op
granularity by a seed-replayable schedule.  The multi-tenant
differential oracle asserts every client's observables (mid-run reads,
final buffer bytes, coherence-directory state, errors) are
**bit-identical to its solo run**: contention may reorder wire traffic
between clients, but a daemon serving N tenants must never change any
one tenant's semantics (per-client registry namespaces, status-buffer
bounds and reply/replay-cache keying are what this locks down).

Runnable outside tier-1 for soak testing::

    PYTHONPATH=src python -m repro.bench.conformance --seeds 200
    PYTHONPATH=src python -m repro.bench.conformance --seed 1234567
    PYTHONPATH=src python -m repro.bench.conformance --faults --seeds 50
    PYTHONPATH=src python -m repro.bench.conformance --clients 4 --seeds 500

(pocl's approach: a reproducible, seed-driven conformance suite is what
lets an OpenCL runtime refactor aggressively without regressing
semantics.)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.client.resilience import RetryPolicy
from repro.hw.cluster import make_ib_cpu_cluster
from repro.ocl.constants import (
    CL_MEM_COPY_HOST_PTR,
    CL_MEM_READ_WRITE,
    CL_MEM_WRITE_ONLY,
    ErrorCode,
)
from repro.ocl.errors import CLError
from repro.sim.faults import FaultAction, FaultPlan, install_fault_injector
from repro.testbed import deploy_dopencl

#: Elements per conformance buffer (float32), kept small so a tier-1
#: run of many seeds stays inside the time budget.
BUFFER_ELEMS = 64

#: The six pipeline configurations every generated program runs under
#: (see the module docstring).  ``sync`` is the oracle.
CONFIGS: Dict[str, Dict[str, object]] = {
    "sync": dict(
        batch_window=0,
        defer_event_relays=False,
        coalesce_uploads=False,
        defer_creations=False,
        coalesce_transfers=False,
        coalesce_reads=False,
        push_transfers=False,
        program_cache=False,
    ),
    "batched": dict(
        coalesce_uploads=False,
        coalesce_transfers=False,
        coalesce_reads=False,
        push_transfers=False,
    ),
    "coalesced_off": dict(coalesce_reads=False),
    "coalesced_on": {},
    "cache_off": dict(program_cache=False),
    "push_off": dict(push_transfers=False),
}

#: The configurations that run with the program build cache enabled —
#: their daemon-side build counters must agree exactly (the same builds
#: resolve through the same cache regardless of coalescing machinery).
CACHED_CONFIGS = ("batched", "coalesced_off", "coalesced_on", "push_off")

#: The configurations that must never plan, execute, commit or waste a
#: speculative push (client- and daemon-side counters all zero); every
#: other configuration runs with ``push_transfers=True`` and is held to
#: the push-counter algebra instead.
PUSH_OFF_CONFIGS = ("sync", "batched", "push_off")

#: Kernels the generator draws from: one pure producer, one
#: read-modify-write, one two-input combiner (the shapes that exercise
#: coherence plans in every direction).
PROGRAM_SOURCE = """
__kernel void fill(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = f + i;
}
__kernel void scale(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = x[i] * f + 1.0f;
}
__kernel void sum2(__global float *out, __global const float *a,
                   __global const float *b, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) out[i] = a[i] + b[i];
}
"""

#: Kernel name -> (arg layout tag).  ``fill``/``scale`` take
#: ``(buffer, float, n)``; ``sum2`` takes ``(out, a, b, n)``.
KERNELS = ("fill", "scale", "sum2")

#: Second translation unit the build-path ops draw on.  ``CONF_BIAS``
#: is settable through build options, so the *same source* built under
#: *different options* yields different kernels — a build cache that
#: wrongly keyed on the digest alone (ignoring options) would hand the
#: wrong binary to one of the two builds and diverge from the sync
#: oracle in the buffer bytes themselves.
EXTRA_PROGRAM_SOURCE = """
#ifndef CONF_BIAS
#define CONF_BIAS 0.25f
#endif
__kernel void bias(__global float *x, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = x[i] + CONF_BIAS;
}
"""

#: Build options of the ``build_dup`` variant that must NOT share a
#: cache entry with the optionless build of the same source.
EXTRA_BUILD_OPTIONS = "-DCONF_BIAS=1.5f"

#: A translation unit that fails to compile (missing semicolon).  The
#: deterministic compiler produces the identical build log every time,
#: so a negatively-cached replay must be bit-identical to the fresh
#: failure — same error code, same ``clGetProgramBuildInfo`` log.
BROKEN_PROGRAM_SOURCE = """
__kernel void broken(__global float *x, const int n) {
    int i = (int)get_global_id(0)
    if (i < n) x[i] = 0.0f;
}
"""

#: ``(source, options)`` pair each ``build_dup`` variant builds.
#: Variant 0 re-builds the main program (a duplicate key), variants
#: 1 and 2 build the extra source under differing options (distinct
#: keys despite the shared digest).
BUILD_DUP_VARIANTS = (
    (PROGRAM_SOURCE, "", "scale"),
    (EXTRA_PROGRAM_SOURCE, EXTRA_BUILD_OPTIONS, "bias"),
    (EXTRA_PROGRAM_SOURCE, "", "bias"),
)


def build_pairs(spec: Dict[str, object]) -> set:
    """The unique ``(source, options)`` build keys a program spec
    attempts (the setup build plus every build op — failed builds count
    too: negatives are cached and shipped exactly like binaries).
    Under the program cache the size of this set is precisely the
    number of compiles the whole cluster may run."""
    pairs = {(PROGRAM_SOURCE, "")}
    for op in spec["ops"]:
        if op[0] == "build_dup":
            source, options, _kernel = BUILD_DUP_VARIANTS[op[1]]
            pairs.add((source, options))
        elif op[0] == "build_bad":
            pairs.add((BROKEN_PROGRAM_SOURCE, ""))
    return pairs


def generate_program(
    seed: int, n_ops: Optional[int] = None, n_servers: Optional[int] = None
) -> Dict[str, object]:
    """Generate one random workload DAG from ``seed``.

    Returns a *program spec* — a plain dict of setup parameters plus an
    op list — that :func:`run_program` interprets identically under any
    pipeline configuration (all randomness, including payload data, is
    drawn here, never at run time).

    Generation maintains two safety rules that keep every program
    deterministic and deadlock-free by construction:

    * before any op that synchronises (a read, a ``clFinish``, the
      creation-failure probe), every still-unset user event is set —
      a blocking sync whose closure reaches a command gated on an
      unset user event would otherwise deadlock (in real OpenCL too);
    * the failed creation is released immediately after its error is
      observed, so the poisoned handle never entangles later ops.
    """
    rng = random.Random(seed)
    servers = n_servers if n_servers is not None else rng.choice([2, 3])
    protocol = rng.choice(["msi", "mosi"])
    n_buffers = rng.randint(3, 5)
    # One queue per device, plus 0-2 extra queues on random devices —
    # the multi-queue-per-daemon shape clFlush barriers order.
    extra_queues = [rng.randrange(servers) for _ in range(rng.randint(0, 2))]
    queue_devices = list(range(servers)) + extra_queues
    buffer_inits = [
        [round(rng.uniform(-4.0, 4.0), 3) for _ in range(BUFFER_ELEMS)]
        for _ in range(n_buffers)
    ]
    ops: List[Tuple] = []
    unset_events: List[int] = []
    n_events = 0

    def set_pending_events() -> None:
        while unset_events:
            ops.append(("set_event", unset_events.pop(0)))

    count = n_ops if n_ops is not None else rng.randint(8, 14)
    emitted_bad_create = False
    for _ in range(count):
        kind = rng.choices(
            ["kernel", "write", "read", "read_nb", "read_async", "flush",
             "finish", "user_event", "bad_create", "churn", "build_dup",
             "build_bad", "loop"],
            weights=[5, 2, 2, 1, 2, 2, 1, 2, 1, 2, 1, 1, 2],
        )[0]
        qi = rng.randrange(len(queue_devices))
        if kind == "kernel":
            name = rng.choice(KERNELS)
            if name == "sum2":
                args = (rng.randrange(n_buffers), rng.randrange(n_buffers),
                        rng.randrange(n_buffers))
            else:
                args = (rng.randrange(n_buffers),)
            gate = None
            if n_events and rng.random() < 0.35:
                gate = rng.randrange(n_events)
            scalar = round(rng.uniform(0.5, 2.0), 3)
            ops.append(("kernel", name, qi, args, scalar, gate))
        elif kind == "write":
            blocking = rng.random() < 0.5
            bi = rng.randrange(n_buffers)
            if rng.random() < 0.3:
                offset_elems = rng.randrange(BUFFER_ELEMS // 2)
                length = rng.randint(1, BUFFER_ELEMS - offset_elems)
                # A partial write read-modify-writes the client copy —
                # a synchronizing fetch, so it falls under the
                # unset-user-event rule like a read.
                set_pending_events()
            else:
                offset_elems, length = 0, BUFFER_ELEMS
            data = [round(rng.uniform(-8.0, 8.0), 3) for _ in range(length)]
            ops.append(("write", bi, qi, blocking, offset_elems, data))
        elif kind == "read":
            set_pending_events()
            ops.append(("read", rng.randrange(n_buffers), qi))
        elif kind == "read_nb":
            set_pending_events()
            ops.append(("read_nb", rng.randrange(n_buffers), qi))
        elif kind == "read_async":
            # Deferred non-blocking read: enqueued with an optional
            # event gate, its bytes checked at the event wait, at a
            # queue finish, or only at the end of the program ("later"
            # — the longest deferral window, crossing every subsequent
            # op).  All user events are set first, so the read's
            # dependency chain can always resolve.
            set_pending_events()
            gate = None
            if n_events and rng.random() < 0.3:
                gate = rng.randrange(n_events)
            via = rng.choice(["event", "finish", "later"])
            ops.append(("read_async", rng.randrange(n_buffers), qi, gate, via))
        elif kind == "flush":
            ops.append(("flush", qi))
        elif kind == "finish":
            set_pending_events()
            ops.append(("finish", qi))
        elif kind == "user_event":
            ops.append(("user_event", n_events))
            unset_events.append(n_events)
            n_events += 1
        elif kind == "bad_create" and not emitted_bad_create:
            set_pending_events()
            ops.append(("bad_create",))
            emitted_bad_create = True
        elif kind == "churn":
            # Retain/release churn on short-lived scratch objects: a
            # buffer and/or kernel is created, retained, and released to
            # zero without ever being used — under deferred creations
            # the remote release chases a still-windowed creation, the
            # refcount round trip the windows must order correctly.  No
            # data is touched, so churn is observable only through the
            # NetStats invariants.
            ops.append(("churn", rng.randrange(3), rng.choice(KERNELS)))
        elif kind == "build_dup":
            # An extra program build mid-run (see BUILD_DUP_VARIANTS):
            # variant 0 duplicates the setup build's (source, options)
            # key, variants 1/2 build one source under two option sets.
            # The built kernel is launched on a live buffer, so a cache
            # handing back the wrong binary corrupts observable bytes.
            ops.append((
                "build_dup", rng.randrange(len(BUILD_DUP_VARIANTS)), qi,
                rng.randrange(n_buffers), round(rng.uniform(0.5, 2.0), 3),
            ))
        elif kind == "build_bad":
            # A build that fails deterministically; repeats replay the
            # negative cache entry, which must surface the identical
            # error and build log as the fresh compile.
            ops.append(("build_bad",))
        elif kind == "loop":
            # Iterative producer->consumer loop (the OSEM shape): one
            # queue's kernel rewrites a buffer every round, another
            # queue's kernel consumes it, with a finish between so the
            # producer's completion notification (and any staged push)
            # lands before the consumer plans its transfer.  From round
            # 3 on the planner sees a stable edge and speculative
            # pushes engage — under random schedules, which is exactly
            # what the push-on vs push-off differential must survive.
            # Contains blocking finishes, so pending user events must
            # be set first (the same rule as a read).
            set_pending_events()
            bi = rng.randrange(n_buffers)
            out_bi = (bi + 1 + rng.randrange(n_buffers - 1)) % n_buffers
            qa = rng.randrange(len(queue_devices))
            qb = rng.randrange(len(queue_devices))
            ops.append((
                "loop", bi, out_bi, qa, qb,
                round(rng.uniform(0.5, 2.0), 3), rng.randint(3, 4),
            ))
    set_pending_events()
    return {
        "seed": seed,
        "n_servers": servers,
        "protocol": protocol,
        "queue_devices": queue_devices,
        "buffer_inits": buffer_inits,
        "ops": ops,
    }


def _apply_op(
    cl, ctx, program, queues, buffers, events, reads, errors, build_logs,
    op_index, op, pending_reads=None,
) -> None:
    """Interpret one program-spec op (shared by the fault-free and
    faulted runners).  Mutates ``events``/``reads``/``errors``/
    ``build_logs`` (and, for ``read_async ... later`` ops,
    ``pending_reads``) in place.

    A gate or set target referencing a user event that failed to be
    created (possible only under an unrecoverable fault schedule, where
    the creating op's error was recorded) is skipped — deterministically,
    since the same creation fails on every replay of the same schedule.
    Objects that could not be created at all (``None`` placeholders from
    :func:`run_program_resilient`'s guarded setup) raise the
    daemon-loss error the failed creation already recorded.
    """

    def require(obj):
        if obj is None:
            raise CLError(
                ErrorCode.CL_DEVICE_NOT_AVAILABLE,
                "object never created (daemon lost during setup)",
            )
        return obj

    kind = op[0]
    if kind == "kernel":
        _, name, qi, args, scalar, gate = op
        kernel = cl.clCreateKernel(require(program), name)
        if name == "sum2":
            out, a, b = args
            cl.clSetKernelArg(kernel, 0, require(buffers[out]))
            cl.clSetKernelArg(kernel, 1, require(buffers[a]))
            cl.clSetKernelArg(kernel, 2, require(buffers[b]))
            cl.clSetKernelArg(kernel, 3, BUFFER_ELEMS)
        else:
            cl.clSetKernelArg(kernel, 0, require(buffers[args[0]]))
            cl.clSetKernelArg(kernel, 1, np.float32(scalar))
            cl.clSetKernelArg(kernel, 2, BUFFER_ELEMS)
        gate_event = events.get(gate) if gate is not None else None
        wait_for = [gate_event] if gate_event is not None else None
        cl.clEnqueueNDRangeKernel(
            require(queues[qi]), kernel, (BUFFER_ELEMS,), wait_for=wait_for
        )
    elif kind == "write":
        _, bi, qi, blocking, offset_elems, data = op
        cl.clEnqueueWriteBuffer(
            require(queues[qi]),
            require(buffers[bi]),
            blocking,
            offset_elems * 4,
            np.array(data, dtype=np.float32),
        )
    elif kind in ("read", "read_nb"):
        _, bi, qi = op
        data, ev = cl.clEnqueueReadBuffer(
            require(queues[qi]), require(buffers[bi]), blocking=(kind == "read")
        )
        if kind == "read_nb":
            # Deferred fetch: the array fills when the event resolves —
            # recording the bytes before the wait would capture the
            # placeholder, not the read.
            cl.clWaitForEvents([ev])
        reads[op_index] = data.tobytes()
    elif kind == "read_async":
        _, bi, qi, gate, via = op
        gate_event = events.get(gate) if gate is not None else None
        wait_for = [gate_event] if gate_event is not None else None
        data, ev = cl.clEnqueueReadBuffer(
            require(queues[qi]), require(buffers[bi]), blocking=False,
            wait_for=wait_for,
        )
        if via == "later" and pending_reads is not None:
            # Longest deferral window: checked by the runner's
            # end-of-program sweep, after the closing finishes.
            pending_reads[op_index] = (data, ev)
        else:
            if via == "finish":
                cl.clFinish(require(queues[qi]))
            else:
                cl.clWaitForEvents([ev])
            reads[op_index] = data.tobytes()
    elif kind == "flush":
        cl.clFlush(require(queues[op[1]]))
    elif kind == "finish":
        cl.clFinish(require(queues[op[1]]))
    elif kind == "user_event":
        events[op[1]] = cl.clCreateUserEvent(ctx)
    elif kind == "set_event":
        event = events.get(op[1])
        if event is not None:
            cl.clSetUserEventStatus(event, 0)
    elif kind == "churn":
        _, variant, kernel_name = op
        if variant in (0, 2):
            scratch = cl.clCreateBuffer(ctx, CL_MEM_READ_WRITE, 4 * BUFFER_ELEMS)
            cl.clRetainMemObject(scratch)
            cl.clReleaseMemObject(scratch)
            cl.clReleaseMemObject(scratch)
        if variant in (1, 2):
            kernel = cl.clCreateKernel(require(program), kernel_name)
            cl.clRetainKernel(kernel)
            cl.clReleaseKernel(kernel)
            cl.clReleaseKernel(kernel)
    elif kind == "loop":
        _, bi, out_bi, qa, qb, scalar, rounds = op
        buf = require(buffers[bi])
        out = require(buffers[out_bi])
        for r in range(rounds):
            producer = cl.clCreateKernel(require(program), "fill")
            cl.clSetKernelArg(producer, 0, buf)
            cl.clSetKernelArg(producer, 1, np.float32(scalar + r))
            cl.clSetKernelArg(producer, 2, BUFFER_ELEMS)
            cl.clEnqueueNDRangeKernel(require(queues[qa]), producer, (BUFFER_ELEMS,))
            # The producer's sync point: its completion notification
            # (carrying any staged push) arrives here, before the
            # consumer's transfer plan is made — the OSEM ordering.
            cl.clFinish(require(queues[qa]))
            consumer = cl.clCreateKernel(require(program), "sum2")
            cl.clSetKernelArg(consumer, 0, out)
            cl.clSetKernelArg(consumer, 1, buf)
            cl.clSetKernelArg(consumer, 2, buf)
            cl.clSetKernelArg(consumer, 3, BUFFER_ELEMS)
            cl.clEnqueueNDRangeKernel(require(queues[qb]), consumer, (BUFFER_ELEMS,))
        cl.clFinish(require(queues[qb]))
    elif kind == "build_dup":
        _, variant, qi, bi, scalar = op
        source, options, kernel_name = BUILD_DUP_VARIANTS[variant]
        extra = cl.clCreateProgramWithSource(ctx, source)
        cl.clBuildProgram(extra, options)
        build_logs[op_index] = cl.clGetProgramBuildInfo(extra, None, "LOG")
        kernel = cl.clCreateKernel(extra, kernel_name)
        cl.clSetKernelArg(kernel, 0, require(buffers[bi]))
        if kernel_name == "scale":
            cl.clSetKernelArg(kernel, 1, np.float32(scalar))
            cl.clSetKernelArg(kernel, 2, BUFFER_ELEMS)
        else:
            cl.clSetKernelArg(kernel, 1, BUFFER_ELEMS)
        cl.clEnqueueNDRangeKernel(require(queues[qi]), kernel, (BUFFER_ELEMS,))
        cl.clReleaseKernel(kernel)
        cl.clReleaseProgram(extra)
    elif kind == "build_bad":
        # The failure is part of the program's expected behaviour, so
        # it is recorded positionally like bad_create (not re-raised):
        # under fault schedules the op must not trip the daemon-loss
        # error audit, and on repeats the negatively-cached replay must
        # produce the identical log captured below.
        bad_program = cl.clCreateProgramWithSource(ctx, BROKEN_PROGRAM_SOURCE)
        try:
            cl.clBuildProgram(bad_program)
        except CLError:
            errors.append(op_index)
        build_logs[op_index] = cl.clGetProgramBuildInfo(bad_program, None, "LOG")
        cl.clReleaseProgram(bad_program)
    elif kind == "bad_create":
        # Mid-run creation failure: conflicting access flags pass
        # the client-side checks but fail daemon-side, so the
        # provisional handle poisons under deferred creations and
        # the error surfaces at the forced sync — while the sync
        # configuration raises at the call itself.  Either way the
        # error is observed at this op and the handle is disposed
        # of (releasing a poisoned handle retires the poison).
        bad = None
        try:
            bad = cl.clCreateBuffer(
                ctx, CL_MEM_READ_WRITE | CL_MEM_WRITE_ONLY, 4 * BUFFER_ELEMS
            )
        except CLError:
            errors.append(op_index)
        if bad is not None:
            try:
                cl.clFinish(require(queues[0]))
            except CLError:
                errors.append(op_index)
            cl.clReleaseMemObject(bad)
        else:
            # The creation raised eagerly.  Under deferred creations
            # that means a window-overflow flush surfaced one server's
            # failure mid-call — replicas of the doomed creation may
            # still sit in other servers' windows with no handle left
            # to release.  Drain them here so the poison is fully
            # observed at this op: the only deferred failure possible
            # at this point is the same creation's (already recorded
            # once above), so the swallow cannot hide anything else.
            queue = next((q for q in queues if q is not None), None)
            if queue is not None:
                try:
                    cl.clFinish(queue)
                except CLError:
                    pass


def _sweep_pending_reads(cl, pending_reads, reads) -> None:
    """Record the bytes of every ``read_async ... later`` op: the
    closing finishes already resolved the deferred fetches, so each wait
    is a no-op confirmation that the event did resolve before the bytes
    are trusted."""
    for op_index in sorted(pending_reads):
        data, ev = pending_reads.pop(op_index)
        cl.clWaitForEvents([ev])
        reads[op_index] = data.tobytes()


def run_program(spec: Dict[str, object], flags: Dict[str, object]) -> Dict[str, object]:
    """Interpret a program spec under one pipeline configuration.

    Returns the observable outcome the differential comparison keys on:
    ``reads`` (op index -> bytes of every blocking/non-blocking mid-run
    read), ``final`` (buffer index -> bytes after the closing
    full-drain readback), ``directories`` (buffer index -> coherence
    state map), ``errors`` (op indices where a ``CLError`` was
    observed), ``build_logs`` (op index -> ``clGetProgramBuildInfo``
    log of every build op, which a negatively-cached failure must
    replay bit-identically), the client's ``NetStats`` snapshot and
    ``build_stats`` (the daemon-aggregate build-cache counters).
    """
    deployment = deploy_dopencl(
        make_ib_cpu_cluster(spec["n_servers"]),
        coherence_protocol=spec["protocol"],
        **flags,
    )
    cl = deployment.api
    devices = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0])
    ctx = cl.clCreateContext(devices)
    queues = [cl.clCreateCommandQueue(ctx, devices[d]) for d in spec["queue_devices"]]
    program = cl.clCreateProgramWithSource(ctx, PROGRAM_SOURCE)
    cl.clBuildProgram(program)
    buffers = []
    for init in spec["buffer_inits"]:
        data = np.array(init, dtype=np.float32)
        buffers.append(
            cl.clCreateBuffer(
                ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, data.nbytes, data
            )
        )
    events: Dict[int, object] = {}
    reads: Dict[int, bytes] = {}
    errors: List[int] = []
    build_logs: Dict[int, str] = {}
    pending_reads: Dict[int, Tuple] = {}
    for op_index, op in enumerate(spec["ops"]):
        _apply_op(
            cl, ctx, program, queues, buffers, events, reads, errors,
            build_logs, op_index, op, pending_reads,
        )
    for queue in queues:
        cl.clFinish(queue)
    _sweep_pending_reads(cl, pending_reads, reads)
    final: Dict[int, bytes] = {}
    for bi, buffer in enumerate(buffers):
        data, _ev = cl.clEnqueueReadBuffer(queues[0], buffer)
        final[bi] = data.tobytes()
    directories = {
        bi: {party: state.value for party, state in buffer.coherence.state.items()}
        for bi, buffer in enumerate(buffers)
    }
    return {
        "reads": reads,
        "final": final,
        "directories": directories,
        "errors": errors,
        "build_logs": build_logs,
        "stats": deployment.driver.stats.snapshot(),
        "build_stats": _daemon_build_stats(deployment),
        "push_stats": _daemon_push_stats(deployment),
    }


def _daemon_push_stats(deployment) -> Dict[str, int]:
    """Deployment-aggregate push-execution counters (summed over
    daemons) — the daemon side of the push-counter algebra."""
    daemons = deployment.daemons
    return {
        "daemon_pushes": sum(d.gcf.stats.daemon_pushes for d in daemons),
        "push_bytes": sum(d.gcf.stats.push_bytes for d in daemons),
    }


def _daemon_build_stats(deployment) -> Dict[str, object]:
    """Deployment-aggregate build-cache counters (summed over daemons)
    — the structural observables of the content-addressed cache."""
    daemons = deployment.daemons
    return {
        "programs_built": sum(d.gcf.stats.programs_built for d in daemons),
        "build_cache_hits": sum(d.gcf.stats.build_cache_hits for d in daemons),
        "negative_build_hits": sum(d.gcf.stats.negative_build_hits for d in daemons),
        "binaries_shipped": sum(d.gcf.stats.binaries_shipped for d in daemons),
        "build_seconds_saved": sum(d.gcf.stats.build_seconds_saved for d in daemons),
    }


# ----------------------------------------------------------------------
# multi-client programs-of-programs (the multi-tenant testbed)
# ----------------------------------------------------------------------

#: Sub-seed derivation stride: client ``ci`` of a ``(seed, n_clients)``
#: multi-program runs :func:`generate_program` on
#: ``seed * MULTI_SEED_STRIDE + MULTI_SEED_CLIENTS * n_clients + ci``.
#: Pure integer arithmetic on the seed — never a shared RNG across
#: seeds — so replays are bit-identical regardless of ``--start`` /
#: ``--seeds`` paging (the same determinism contract as the
#: single-client harness).
MULTI_SEED_STRIDE = 1_000_003
MULTI_SEED_CLIENTS = 7_919

#: Transfer budget for multi-client runs — the no-hang watchdog: an
#: action-less :class:`FaultPlan` whose ``max_transfers`` budget turns
#: any livelock into a ``WatchdogTimeout`` naming the stuck edge.
MULTI_WATCHDOG_TRANSFERS = 250_000


def generate_multi_program(
    seed: int,
    n_clients: int,
    n_ops: Optional[int] = None,
    n_servers: Optional[int] = None,
) -> Dict[str, object]:
    """Generate a *program-of-programs*: ``n_clients`` independent
    client programs plus the cluster topology and interleave schedule
    they run under.

    Everything is a pure function of ``(seed, n_clients)``:

    * the topology RNG (server count, coherence protocol, per-client
      daemon subsets, interleave order) is seeded with an integer
      derived only from ``(seed, n_clients)``;
    * each client's program comes from :func:`generate_program` on its
      own derived sub-seed (see :data:`MULTI_SEED_STRIDE`), with the
      shared protocol substituted so all drivers run one coherence
      configuration.

    Clients get *daemon subsets* — a sorted sample of the cluster's
    servers, so some pairs are disjoint and some overlap — and the
    schedule interleaves the clients' ops at op granularity while
    preserving each client's own program order (concurrency may reorder
    wire traffic between clients, never within one).
    """
    rng = random.Random(seed * MULTI_SEED_STRIDE + MULTI_SEED_CLIENTS * n_clients)
    total = n_servers if n_servers is not None else rng.choice([2, 3])
    protocol = rng.choice(["msi", "mosi"])
    subsets: List[List[int]] = []
    for _ in range(n_clients):
        k = rng.randint(1, total)
        subsets.append(sorted(rng.sample(range(total), k)))
    clients: List[Dict[str, object]] = []
    for ci in range(n_clients):
        sub_seed = seed * MULTI_SEED_STRIDE + MULTI_SEED_CLIENTS * n_clients + ci + 1
        spec = generate_program(sub_seed, n_ops=n_ops, n_servers=len(subsets[ci]))
        spec["protocol"] = protocol
        clients.append(spec)
    schedule: List[int] = []
    for ci, spec in enumerate(clients):
        schedule.extend([ci] * len(spec["ops"]))
    rng.shuffle(schedule)
    return {
        "seed": seed,
        "n_clients": n_clients,
        "n_servers": total,
        "protocol": protocol,
        "subsets": subsets,
        "clients": clients,
        "schedule": schedule,
    }


class _ClientRun:
    """Per-client interpreter state inside one shared deployment (the
    arguments :func:`_apply_op` threads through, bundled per tenant)."""

    def __init__(self, cl) -> None:
        self.cl = cl
        self.ctx = None
        self.program = None
        self.queues: List[object] = []
        self.buffers: List[object] = []
        self.events: Dict[int, object] = {}
        self.reads: Dict[int, bytes] = {}
        self.errors: List[int] = []
        self.build_logs: Dict[int, str] = {}
        self.pending_reads: Dict[int, Tuple] = {}

    def setup(self, spec: Dict[str, object]) -> None:
        """The per-client setup phase (same shape as :func:`run_program`:
        context, queues, program build, initialised buffers)."""
        cl = self.cl
        devices = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0])
        self.ctx = cl.clCreateContext(devices)
        self.queues = [
            cl.clCreateCommandQueue(self.ctx, devices[d]) for d in spec["queue_devices"]
        ]
        self.program = cl.clCreateProgramWithSource(self.ctx, PROGRAM_SOURCE)
        cl.clBuildProgram(self.program)
        for init in spec["buffer_inits"]:
            data = np.array(init, dtype=np.float32)
            self.buffers.append(
                cl.clCreateBuffer(
                    self.ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, data.nbytes, data
                )
            )

    def apply(self, op_index: int, op: Tuple) -> None:
        """Interpret one of this client's ops via the shared interpreter."""
        _apply_op(
            self.cl, self.ctx, self.program, self.queues, self.buffers,
            self.events, self.reads, self.errors, self.build_logs, op_index, op,
            self.pending_reads,
        )

    def finalize(self, stats: Dict[str, int]) -> Dict[str, object]:
        """Drain every queue, read back every buffer and snapshot the
        observables (the same outcome dict :func:`run_program` returns)."""
        cl = self.cl
        for queue in self.queues:
            cl.clFinish(queue)
        _sweep_pending_reads(cl, self.pending_reads, self.reads)
        final: Dict[int, bytes] = {}
        for bi, buffer in enumerate(self.buffers):
            data, _ev = cl.clEnqueueReadBuffer(self.queues[0], buffer)
            final[bi] = data.tobytes()
        directories = {
            bi: {party: state.value for party, state in buffer.coherence.state.items()}
            for bi, buffer in enumerate(self.buffers)
        }
        return {
            "reads": self.reads,
            "final": final,
            "directories": directories,
            "errors": self.errors,
            "build_logs": self.build_logs,
            "stats": stats,
        }


def run_multi_program(
    mspec: Dict[str, object], flags: Dict[str, object]
) -> Tuple[List[Dict[str, object]], object]:
    """Interpret a program-of-programs on **one shared deployment**.

    Every client is its own driver/API instance pinned to its daemon
    subset (``client_server_lists``); the interleave schedule dictates
    which client executes its next op at each step.  A transfer-budget
    watchdog (an action-less fault plan) bounds the whole run, so a
    cross-client deadlock fails fast instead of hanging tier-1.

    Returns ``(outcomes, deployment)`` — one outcome dict per client
    (same shape as :func:`run_program`) plus the deployment for
    daemon-side isolation audits.
    """
    n_clients = mspec["n_clients"]
    cluster = make_ib_cpu_cluster(mspec["n_servers"], n_clients=n_clients)
    server_names = [server.name for server in cluster.servers]
    deployment = deploy_dopencl(
        cluster,
        coherence_protocol=mspec["protocol"],
        n_clients=n_clients,
        client_server_lists=[
            [server_names[i] for i in subset] for subset in mspec["subsets"]
        ],
        **flags,
    )
    install_fault_injector(
        cluster.network, FaultPlan(actions=[], max_transfers=MULTI_WATCHDOG_TRANSFERS)
    )
    runs = [_ClientRun(deployment.apis[ci]) for ci in range(n_clients)]
    for ci in range(n_clients):
        runs[ci].setup(mspec["clients"][ci])
    cursors = [0] * n_clients
    for ci in mspec["schedule"]:
        op_index = cursors[ci]
        cursors[ci] += 1
        runs[ci].apply(op_index, mspec["clients"][ci]["ops"][op_index])
    outcomes = [
        runs[ci].finalize(deployment.drivers[ci].stats.snapshot())
        for ci in range(n_clients)
    ]
    return outcomes, deployment


def run_client_solo(
    mspec: Dict[str, object], ci: int, flags: Dict[str, object]
) -> Dict[str, object]:
    """The differential oracle for one tenant: client ``ci``'s program
    run *alone* — same total cluster (so daemon names and hence
    directory parties are identical), same daemon subset, ops in
    program order — on a fresh deployment."""
    spec = mspec["clients"][ci]
    solo = {
        "seed": mspec["seed"],
        "n_clients": 1,
        "n_servers": mspec["n_servers"],
        "protocol": mspec["protocol"],
        "subsets": [mspec["subsets"][ci]],
        "clients": [spec],
        "schedule": [0] * len(spec["ops"]),
    }
    outcomes, _deployment = run_multi_program(solo, flags)
    return outcomes[0]


def _audit_isolation(tag: str, mspec: Dict[str, object], deployment) -> None:
    """Daemon-side per-client isolation audits after a multi run:
    registry namespaces match exactly the clients that own objects
    there, no status-before-create drop or admission event fired, and
    every send window fully drained."""
    client_names = {driver.gcf.name for driver in deployment.drivers}
    for daemon in deployment.daemons:
        namespaces = set(daemon.registry.client_names())
        assert namespaces <= client_names, (
            f"{tag}: daemon {daemon.name} registry holds foreign namespaces "
            f"{namespaces - client_names}"
        )
        stats = daemon.gcf.stats
        assert stats.dropped_event_statuses == 0, (
            f"{tag}: daemon {daemon.name} dropped event statuses under a "
            f"workload that never fills the buffer"
        )
        assert stats.refused_connections == 0 and stats.quota_rejections == 0, (
            f"{tag}: daemon {daemon.name} admission control fired without a policy"
        )
    for driver in deployment.drivers:
        for conn in driver.connections():
            assert len(conn.window) == 0, (
                f"{tag}: client {driver.gcf.name} left commands windowed for "
                f"{conn.name} after the final drain"
            )


def _audit_multi_build_cache(
    tag: str, mspec: Dict[str, object], deployment, flags: Dict[str, object]
) -> None:
    """Shared-deployment build-cache audit: with the cache on, N
    tenants' builds compile exactly once per unique ``(source,
    options)`` key *cluster-wide* (cross-tenant and cross-daemon
    sharing both engage); with ``program_cache=False`` no build-cache
    counter may move at all."""
    stats = _daemon_build_stats(deployment)
    if flags.get("program_cache", True):
        unique = len(set().union(*(build_pairs(spec) for spec in mspec["clients"])))
        assert stats["programs_built"] == unique, (
            f"{tag}: {stats['programs_built']} compiles for {unique} unique "
            f"(source, options) keys across all tenants"
        )
    else:
        for key, value in stats.items():
            assert value == 0, (
                f"{tag}: cache-off deployment moved build counter {key}={value}"
            )


def run_multi_seed(
    seed: int,
    n_clients: int,
    n_ops: Optional[int] = None,
    n_servers: Optional[int] = None,
    config: str = "coalesced_on",
) -> Dict[str, object]:
    """Run one multi-client seed and assert the tenant-isolation
    differential: every client's observables (mid-run reads, final
    buffer bytes, coherence-directory state, observed errors) must be
    **bit-identical** to its solo run — concurrency may reorder wire
    traffic between clients but never change any client's semantics.

    Every assertion message carries the seed and client count, so a
    failure replays exactly with ``python -m repro.bench.conformance
    --seed <seed> --clients <n>``."""
    mspec = generate_multi_program(seed, n_clients, n_ops=n_ops, n_servers=n_servers)
    flags = dict(CONFIGS[config])
    outcomes, deployment = run_multi_program(mspec, flags)
    tag = f"seed {seed} clients {n_clients}"
    _audit_isolation(tag, mspec, deployment)
    _audit_multi_build_cache(tag, mspec, deployment, flags)
    for ci in range(n_clients):
        solo = run_client_solo(mspec, ci, flags)
        shared = outcomes[ci]
        ctag = f"{tag} client {ci}"
        assert shared["errors"] == solo["errors"], (
            f"{ctag}: contention changed observed errors: "
            f"{shared['errors']} vs solo {solo['errors']}"
        )
        assert shared["build_logs"] == solo["build_logs"], (
            f"{ctag}: cross-tenant build-cache sharing changed a build "
            f"log: {shared['build_logs']} vs solo {solo['build_logs']}"
        )
        assert shared["reads"].keys() == solo["reads"].keys(), (
            f"{ctag}: contention changed which reads happened"
        )
        for op_index, payload in solo["reads"].items():
            assert shared["reads"][op_index] == payload, (
                f"{ctag}: read at op {op_index} diverged from the solo run"
            )
        assert shared["final"] == solo["final"], (
            f"{ctag}: final buffer contents diverged from the solo run"
        )
        assert shared["directories"] == solo["directories"], (
            f"{ctag}: directory state diverged: "
            f"{shared['directories']} vs solo {solo['directories']}"
        )
    return {
        "seed": seed,
        "n_clients": n_clients,
        "n_servers": mspec["n_servers"],
        "protocol": mspec["protocol"],
        "n_ops": sum(len(spec["ops"]) for spec in mspec["clients"]),
        "round_trips": sum(o["stats"]["round_trips"] for o in outcomes),
    }


# ----------------------------------------------------------------------
# conformance under fire (fault schedules)
# ----------------------------------------------------------------------

#: Transfer budget for faulted runs — the no-deadlock watchdog: a retry
#: loop that stops converging exhausts this long before tier-1's time
#: budget and fails with ``WatchdogTimeout`` naming the livelocked edge.
FAULT_WATCHDOG_TRANSFERS = 100_000

#: Schedules whose faults the retry policy must absorb *exactly*: the
#: faulted run has to be bit-identical to the fault-free run.
RECOVERABLE_SCHEDULES = (
    "drop-batch", "drop-reply", "delay-batch", "truncate-bulk", "sever-heal",
)

#: Schedules that destroy state for good: runs must fail with the same
#: deterministic ``CL_DEVICE_NOT_AVAILABLE``-class errors every time.
UNRECOVERABLE_SCHEDULES = ("crash", "sever-permanent")

#: Schedules that target the daemon-initiated push path.  Kept out of
#: the generic matrix above because a randomly generated program is not
#: guaranteed to emit any ``s2s-push`` traffic (MSI protocol, or no
#: producer->consumer loop drawn) and the matrix asserts every schedule
#: fires; :func:`run_push_fault_seed` forces the push path instead.
PUSH_SCHEDULES = ("sever-push",)

#: Schedules that target the deferred-read fetch path.  Also kept out
#: of the generic matrix: a random program may resolve every deferred
#: read off a staged push (no demand fetch at all), so the matrix
#: cannot assert the schedule fires.  :func:`run_deferred_read_fault_seed`
#: replays a deterministic program whose *first* bulk download is a
#: deferred fetch instead.
DEFERRED_READ_SCHEDULES = ("sever-fetch",)

#: Error codes an unrecoverable schedule may surface (daemon-loss class).
DAEMON_LOSS_CODES = frozenset(
    {int(ErrorCode.CL_DEVICE_NOT_AVAILABLE), int(ErrorCode.CL_CONNECTION_ERROR_WWU)}
)


def fault_plan(schedule: str) -> FaultPlan:
    """Build a fresh :class:`FaultPlan` for a named schedule.

    Every schedule targets batch or bulk traffic (occurrence-counted, so
    the same program faults the same message every run) and carries the
    :data:`FAULT_WATCHDOG_TRANSFERS` budget.
    """
    actions = {
        "drop-batch": [FaultAction("drop", nth=2, tag="CommandBatch")],
        "drop-reply": [FaultAction("drop", nth=1, tag="CommandBatchResponse")],
        "delay-batch": [FaultAction("delay", nth=1, tag="CommandBatch", delay=0.02)],
        "truncate-bulk": [FaultAction("truncate", nth=1, tag_prefix="bulk:")],
        "sever-heal": [
            FaultAction("sever", nth=3, tag="CommandBatch", heal_after=1)
        ],
        "crash": [FaultAction("crash", nth=2, tag="CommandBatch")],
        "sever-permanent": [
            FaultAction("sever", nth=2, tag="CommandBatch", heal_after=None)
        ],
        "sever-push": [FaultAction("sever", nth=1, tag="s2s-push", heal_after=1)],
        "sever-fetch": [
            FaultAction(
                "sever", nth=1, tag="bulk:BufferDataDownload", heal_after=1
            )
        ],
    }[schedule]
    return FaultPlan(actions=actions, max_transfers=FAULT_WATCHDOG_TRANSFERS)


def push_fault_spec(seed: int) -> Dict[str, object]:
    """The program :func:`run_push_fault_seed` replays: the generated
    program for ``seed`` forced onto MOSI with a deterministic
    cross-daemon producer->consumer loop appended, so the s2s push path
    engages regardless of what the seed happened to draw."""
    spec = generate_program(seed)
    spec["protocol"] = "mosi"
    spec["ops"] = list(spec["ops"]) + [("loop", 0, 1, 0, 1, 1.25, 4)]
    return spec


def run_push_fault_seed(seed: int) -> Dict[str, object]:
    """The severed-push-link contract: cutting the s2s mesh under a
    speculative push must *degrade to demand fetch* — the owning daemon
    abandons the push, the consumer pays the ordinary client-mediated
    transfer, and every observable stays bit-identical to the
    fault-free run.  The schedule severs the peer link at the first
    ``s2s-push`` transfer and heals it one blocked transfer later, so
    both the abandoned push and the retried demand path are exercised.
    """
    spec = push_fault_spec(seed)
    flags = dict(CONFIGS["coalesced_on"])
    tag = f"seed {seed} schedule sever-push"
    baseline = run_program_resilient(spec, flags, None)
    assert baseline["stats"]["push_commits"] > 0, (
        f"{tag}: fault-free run never committed a push — the schedule "
        f"would be vacuous"
    )
    faulted = run_program_resilient(spec, flags, fault_plan("sever-push"))
    _check_resilience_stats(tag, faulted["stats"])
    assert _semantics(faulted) == _semantics(baseline), (
        f"{tag}: severed push link changed observable behaviour: "
        f"{_semantics(faulted)} vs {_semantics(baseline)}"
    )
    assert faulted["stats"]["dead_daemons"] == 0, (
        f"{tag}: severed push link killed a daemon"
    )
    return {
        "seed": seed,
        "schedule": "sever-push",
        "fired": (faulted["injector"] or {}).get("fired_actions", 0),
        "baseline_commits": baseline["stats"]["push_commits"],
        "faulted_commits": faulted["stats"]["push_commits"],
    }


def deferred_read_fault_spec(seed: int) -> Dict[str, object]:
    """The program :func:`run_deferred_read_fault_seed` replays: a
    fixed shape (kernel -> deferred read, twice, on two daemons) whose
    scalars and initial data are drawn from ``seed``.  The buffers are
    created from host pointers, so the kernels only ever *upload* —
    the first bulk download on the wire is guaranteed to be the
    deferred fetch the ``sever-fetch`` schedule targets."""
    rng = random.Random(seed)
    inits = [
        [round(rng.uniform(-4.0, 4.0), 3) for _ in range(BUFFER_ELEMS)]
        for _ in range(2)
    ]
    s0 = round(rng.uniform(0.5, 2.0), 3)
    s1 = round(rng.uniform(0.5, 2.0), 3)
    return {
        "seed": seed,
        "n_servers": 2,
        "protocol": "msi",
        "queue_devices": [0, 1],
        "buffer_inits": inits,
        "ops": [
            ("kernel", "fill", 0, (0,), s0, None),
            ("read_async", 0, 0, None, "event"),
            ("kernel", "scale", 1, (1,), s1, None),
            ("read_async", 1, 1, None, "finish"),
        ],
    }


def run_deferred_read_fault_seed(seed: int) -> Dict[str, object]:
    """The severed-fetch contract: cutting the client<->daemon link at
    the exact transfer that carries a deferred read's fetch must
    degrade deterministically — the retry policy replays the fetch
    over the healed link, the waited event still resolves, and every
    observable byte stays identical to the fault-free run.  The
    schedule severs the link at the first ``bulk:BufferDataDownload``
    (which :func:`deferred_read_fault_spec` pins to the deferred
    fetch) and heals it one blocked transfer later."""
    spec = deferred_read_fault_spec(seed)
    flags = dict(CONFIGS["coalesced_on"])
    tag = f"seed {seed} schedule sever-fetch"
    baseline = run_program_resilient(spec, flags, None)
    assert baseline["stats"]["deferred_reads"] > 0, (
        f"{tag}: fault-free run never deferred a read — the schedule "
        f"would be vacuous"
    )
    faulted = run_program_resilient(spec, flags, fault_plan("sever-fetch"))
    _check_resilience_stats(tag, faulted["stats"])
    fired = (faulted["injector"] or {}).get("fired_actions", 0)
    assert fired > 0, f"{tag}: the sever-fetch schedule never fired"
    assert _semantics(faulted) == _semantics(baseline), (
        f"{tag}: severed deferred fetch changed observable behaviour: "
        f"{_semantics(faulted)} vs {_semantics(baseline)}"
    )
    assert faulted["stats"]["dead_daemons"] == 0, (
        f"{tag}: severed deferred fetch killed a daemon"
    )
    return {
        "seed": seed,
        "schedule": "sever-fetch",
        "fired": fired,
        "baseline_deferred": baseline["stats"]["deferred_reads"],
        "faulted_deferred": faulted["stats"]["deferred_reads"],
    }


def run_program_resilient(
    spec: Dict[str, object],
    flags: Dict[str, object],
    plan: Optional[FaultPlan] = None,
) -> Dict[str, object]:
    """Interpret a program spec with the retry policy installed and (when
    ``plan`` is given) a fault injector armed.

    The injector is installed *after* deployment, so connect/discovery
    traffic is never faulted — the schedules target the steady state,
    which is where the resilience machinery lives.  Each daemon's
    :meth:`~repro.core.daemon.daemon.Daemon.crash` is registered as its
    host's crash hook.

    Unlike :func:`run_program`, every op is individually guarded: a
    ``CLError`` is recorded as ``(op_index, code)`` and interpretation
    continues — exactly what a resilient application would observe.  The
    final readback records ``("error", code)`` for unreadable buffers.
    """
    deployment = deploy_dopencl(
        make_ib_cpu_cluster(spec["n_servers"]),
        coherence_protocol=spec["protocol"],
        retry_policy=RetryPolicy(),
        **flags,
    )
    injector = None
    if plan is not None:
        injector = install_fault_injector(deployment.cluster.network, plan)
        for daemon in deployment.daemons:
            injector.register_crash_hook(daemon.host.name, daemon.crash)
    cl = deployment.api
    errors: List[object] = []

    def setup(step: str, fn):
        # A daemon lost mid-setup must not abort the run: the failed
        # step is recorded positionally (deterministic on replay, since
        # occurrence-counted faults hit the same step every time) and
        # the placeholder None propagates the loss to every dependent op
        # through _apply_op's require() guard.
        try:
            return fn()
        except CLError as exc:
            errors.append((step, int(exc.code)))
            return None

    devices = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0])
    ctx = cl.clCreateContext(devices)
    queues = [
        setup(f"queue:{qi}", lambda d=d: cl.clCreateCommandQueue(ctx, devices[d]))
        for qi, d in enumerate(spec["queue_devices"])
    ]
    program = setup(
        "program", lambda: cl.clCreateProgramWithSource(ctx, PROGRAM_SOURCE)
    )
    if program is not None:
        try:
            cl.clBuildProgram(program)
        except CLError as exc:
            errors.append(("build", int(exc.code)))
            program = None
    buffers = []
    for bi, init in enumerate(spec["buffer_inits"]):
        data = np.array(init, dtype=np.float32)
        buffers.append(
            setup(
                f"buffer:{bi}",
                lambda data=data: cl.clCreateBuffer(
                    ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, data.nbytes, data
                ),
            )
        )
    events: Dict[int, object] = {}
    reads: Dict[int, bytes] = {}
    build_logs: Dict[int, str] = {}
    pending_reads: Dict[int, Tuple] = {}
    for op_index, op in enumerate(spec["ops"]):
        try:
            _apply_op(
                cl, ctx, program, queues, buffers, events, reads, errors,
                build_logs, op_index, op, pending_reads,
            )
        except CLError as exc:
            errors.append((op_index, int(exc.code)))
    unavailable = int(ErrorCode.CL_DEVICE_NOT_AVAILABLE)
    for qi, queue in enumerate(queues):
        try:
            if queue is None:
                raise CLError(ErrorCode.CL_DEVICE_NOT_AVAILABLE, "queue never created")
            cl.clFinish(queue)
        except CLError as exc:
            errors.append(("finish", qi, int(exc.code)))
    # Pending ``later`` reads sweep individually guarded: a read whose
    # deferred fetch was poisoned by a daemon loss records its error
    # positionally (deterministic on replay) instead of aborting.
    for op_index in sorted(pending_reads):
        data, ev = pending_reads.pop(op_index)
        try:
            cl.clWaitForEvents([ev])
            reads[op_index] = data.tobytes()
        except CLError as exc:
            errors.append((op_index, int(exc.code)))
    final: Dict[int, object] = {}
    for bi, buffer in enumerate(buffers):
        try:
            if buffer is None or queues[0] is None:
                raise CLError(ErrorCode.CL_DEVICE_NOT_AVAILABLE, "never created")
            data, _ev = cl.clEnqueueReadBuffer(queues[0], buffer)
            final[bi] = data.tobytes()
        except CLError as exc:
            final[bi] = ("error", int(exc.code))
    directories = {
        bi: (
            {party: state.value for party, state in buffer.coherence.state.items()}
            if buffer is not None
            else ("error", unavailable)
        )
        for bi, buffer in enumerate(buffers)
    }
    lost = sorted(
        bi
        for bi, b in enumerate(buffers)
        if b is not None and b.coherence.data_lost
    )
    return {
        "reads": reads,
        "final": final,
        "directories": directories,
        "errors": errors,
        "build_logs": build_logs,
        "lost": lost,
        "stats": deployment.driver.stats.snapshot(),
        "injector": injector.snapshot() if injector is not None else None,
    }


def _semantics(outcome: Dict[str, object]) -> Dict[str, object]:
    """The observable slice of a faulted outcome (everything but the
    counters, which legitimately differ between runs with and without
    faults)."""
    return {
        key: outcome[key]
        for key in ("reads", "final", "directories", "errors", "build_logs", "lost")
    }


def _check_resilience_stats(tag: str, stats: Dict[str, int]) -> None:
    """Structural invariants of the resilience counters (audited on every
    faulted run; the seed is in ``tag`` so violations replay)."""
    assert stats["retries"] <= stats["timeouts"], (
        f"{tag}: more retries than timeouts ({stats['retries']} > {stats['timeouts']})"
    )
    assert stats["deduped_batches"] <= stats["replayed_batches"], (
        f"{tag}: daemons deduped more batches than the client replayed "
        f"({stats['deduped_batches']} > {stats['replayed_batches']})"
    )
    for key in ("timeouts", "retries", "replayed_batches", "deduped_batches",
                "evicted_replicas", "dead_daemons", "lost_notifications"):
        assert stats[key] >= 0, f"{tag}: negative counter {key}"


def run_seed_with_faults(
    seed: int, schedule: str, config: str = "coalesced_on"
) -> Dict[str, object]:
    """Run one (seed, schedule) combination and assert its contract.

    Recoverable schedule: the faulted run must be bit-identical (reads,
    final contents, directory state, observed errors) to the fault-free
    run of the same configuration.  Unrecoverable schedule: the faulted
    run must reproduce *itself* exactly on a second run, and every error
    it surfaces must be daemon-loss class.  Either way the resilience
    counters are audited and the watchdog bounds the run.
    """
    spec = generate_program(seed)
    flags = dict(CONFIGS[config])
    tag = f"seed {seed} schedule {schedule}"
    baseline = run_program_resilient(spec, flags, None)
    faulted = run_program_resilient(spec, flags, fault_plan(schedule))
    _check_resilience_stats(tag, faulted["stats"])
    if schedule in RECOVERABLE_SCHEDULES:
        assert _semantics(faulted) == _semantics(baseline), (
            f"{tag}: recoverable fault changed observable behaviour: "
            f"{_semantics(faulted)} vs {_semantics(baseline)}"
        )
        assert faulted["stats"]["dead_daemons"] == 0, (
            f"{tag}: recoverable schedule killed a daemon"
        )
    else:
        again = run_program_resilient(spec, flags, fault_plan(schedule))
        assert _semantics(faulted) == _semantics(again), (
            f"{tag}: unrecoverable fault is not deterministic: "
            f"{_semantics(faulted)} vs {_semantics(again)}"
        )
        for entry in faulted["errors"]:
            if isinstance(entry, tuple):
                code = entry[-1]
                assert code in DAEMON_LOSS_CODES, (
                    f"{tag}: op error {entry} is not daemon-loss class"
                )
        for payload in faulted["final"].values():
            if isinstance(payload, tuple):
                assert payload[1] in DAEMON_LOSS_CODES, (
                    f"{tag}: final readback error {payload} is not daemon-loss class"
                )
    return {
        "seed": seed,
        "schedule": schedule,
        "config": config,
        "fired": (faulted["injector"] or {}).get("fired_actions", 0),
        "errors": len(faulted["errors"]),
        "baseline_errors": len(baseline["errors"]),
        "retries": faulted["stats"]["retries"],
        "dead_daemons": faulted["stats"]["dead_daemons"],
    }


def _check_stats_invariants(
    seed: int, spec: Dict[str, object], outcomes: Dict[str, Dict[str, object]]
) -> None:
    """The per-configuration ``NetStats`` structural invariants (seed in
    every message so a violation is replayable)."""
    tag = f"seed {seed}"
    sync = outcomes["sync"]["stats"]
    assert sync["batches"] == 0, f"{tag}: sync config dispatched batches"
    assert sync["flush_barriers"] == 0, f"{tag}: sync config recorded barriers"
    assert sync["prefix_flushes"] == 0, f"{tag}: sync config prefix-flushed"
    assert sync["relays_deferred"] == 0, f"{tag}: sync config deferred relays"
    for name in ("sync", "batched", "coalesced_off"):
        stats = outcomes[name]["stats"]
        assert stats["coalesced_reads"] == 0, (
            f"{tag}: {name} config fused result reads with coalesce_reads off"
        )
    for name in ("sync", "batched"):
        stats = outcomes[name]["stats"]
        for key in ("coalesced_uploads", "coalesced_downloads",
                    "coalesced_peer_transfers"):
            assert stats[key] == 0, f"{tag}: {name} config has {key} != 0"
    # Build-cache structural invariants.  With the cache disabled no
    # counter may move on either side of the wire; with it enabled the
    # daemon aggregates are an exact function of the program's build
    # keys, independent of every coalescing knob.
    for name in ("sync", "cache_off"):
        stats = outcomes[name]["stats"]
        for key in ("build_cache_hits", "negative_build_hits"):
            assert stats[key] == 0, (
                f"{tag}: {name} config moved client build counter {key}"
            )
        for key, value in outcomes[name]["build_stats"].items():
            assert value == 0, (
                f"{tag}: {name} config moved daemon build counter {key}={value}"
            )
    # Push-transfer structural invariants.  A push-off configuration
    # never plans, executes, commits or wastes a push on either side of
    # the wire; a push-on configuration obeys the algebra
    # ``push_commits + wasted_pushes <= daemon_pushes <=
    # speculative_pushes`` (a discarded push is only ever *counted*,
    # never observed — the byte/directory equality above is the proof).
    for name in PUSH_OFF_CONFIGS:
        stats = outcomes[name]["stats"]
        for key in ("speculative_pushes", "push_commits", "wasted_pushes"):
            assert stats[key] == 0, (
                f"{tag}: {name} config moved push counter {key}={stats[key]}"
            )
        for key, value in outcomes[name]["push_stats"].items():
            assert value == 0, (
                f"{tag}: {name} config moved daemon push counter {key}={value}"
            )
    for name in outcomes:
        if name in PUSH_OFF_CONFIGS:
            continue
        stats = outcomes[name]["stats"]
        executed = outcomes[name]["push_stats"]["daemon_pushes"]
        assert (
            stats["push_commits"] + stats["wasted_pushes"]
            <= executed
            <= stats["speculative_pushes"]
        ), (
            f"{tag}: {name} config broke the push algebra: "
            f"commits={stats['push_commits']} wasted={stats['wasted_pushes']} "
            f"executed={executed} hints={stats['speculative_pushes']}"
        )
    unique = len(build_pairs(spec))
    servers = spec["n_servers"]
    reference = outcomes[CACHED_CONFIGS[0]]["build_stats"]
    for name in CACHED_CONFIGS:
        build = outcomes[name]["build_stats"]
        assert build == reference, (
            f"{tag}: cached configs disagree on build counters: "
            f"{name}={build} vs {CACHED_CONFIGS[0]}={reference}"
        )
        # One compile per unique (source, options) key cluster-wide;
        # the compiling daemon ships every outcome (binaries and
        # negatives alike) to each of its siblings, and every other
        # resolution is a hit of one kind or the other.
        assert build["programs_built"] == unique, (
            f"{tag}: {name} compiled {build['programs_built']} times for "
            f"{unique} unique build keys"
        )
        assert build["binaries_shipped"] == unique * (servers - 1), (
            f"{tag}: {name} shipped {build['binaries_shipped']} entries, "
            f"expected {unique} keys x {servers - 1} siblings"
        )
        total_builds = _build_resolutions(spec)
        hits = build["build_cache_hits"] + build["negative_build_hits"]
        assert build["programs_built"] + hits == total_builds, (
            f"{tag}: {name} resolved {build['programs_built']} + {hits} "
            f"builds, expected {total_builds}"
        )
    # The pipeline is a communication optimisation: no deferred
    # configuration may ever spend as much as the synchronous oracle.
    # (The *intra*-pipeline ordering is deliberately not asserted
    # exactly: transfer coalescing reorders execution into download /
    # peer / upload phases, and on adversarial interleavings the phase
    # boundary can shift a window flush by a round trip even while
    # fusing fetches — observed at seed 307.  The deterministic
    # coalescing floors are gated by the smoke benchmark instead.)
    rt = {name: outcomes[name]["stats"]["round_trips"] for name in outcomes}
    for name in ("batched", "coalesced_off", "coalesced_on", "cache_off", "push_off"):
        assert rt[name] < rt["sync"], (
            f"{tag}: {name} config did not beat the synchronous oracle ({rt})"
        )
    # The build cache only ever removes round trips from the full
    # pipeline (every generated program builds at least once, so the
    # saving is strict).
    assert rt["coalesced_on"] < rt["cache_off"], (
        f"{tag}: program cache did not save round trips ({rt})"
    )


def _build_resolutions(spec: Dict[str, object]) -> int:
    """Total daemon-side build resolutions a spec causes under the
    program cache: every ``clBuildProgram`` fans one cached-build
    request out to each of the context's servers."""
    builds = 1 + sum(op[0] in ("build_dup", "build_bad") for op in spec["ops"])
    return builds * spec["n_servers"]


def run_seed(
    seed: int, n_ops: Optional[int] = None, n_servers: Optional[int] = None
) -> Dict[str, object]:
    """Generate the program for ``seed``, run it under every
    configuration and assert the differential properties; returns a
    summary (op count, per-config round trips) for reporting.

    Every assertion message carries the seed, so a failing run is
    reproduced exactly with ``python -m repro.bench.conformance --seed
    <seed>`` (or by parametrising the tier-1 test with it)."""
    spec = generate_program(seed, n_ops=n_ops, n_servers=n_servers)
    outcomes = {name: run_program(spec, flags) for name, flags in CONFIGS.items()}
    oracle = outcomes["sync"]
    tag = f"seed {seed}"
    for name, outcome in outcomes.items():
        assert outcome["errors"] == oracle["errors"], (
            f"{tag}: {name} observed errors at ops {outcome['errors']}, "
            f"sync at {oracle['errors']}"
        )
        assert outcome["reads"].keys() == oracle["reads"].keys(), (
            f"{tag}: {name} performed different reads"
        )
        for op_index, payload in oracle["reads"].items():
            assert outcome["reads"][op_index] == payload, (
                f"{tag}: {name} read at op {op_index} diverged from sync"
            )
        for bi, payload in oracle["final"].items():
            assert outcome["final"][bi] == payload, (
                f"{tag}: {name} final contents of buffer {bi} diverged from sync"
            )
        assert outcome["directories"] == oracle["directories"], (
            f"{tag}: {name} directory state diverged: "
            f"{outcome['directories']} vs {oracle['directories']}"
        )
        # Build logs are part of the oracle: a negatively-cached replay
        # (or a cross-daemon shipped binary) must reproduce the same
        # clGetProgramBuildInfo text as the fresh synchronous compile.
        assert outcome["build_logs"] == oracle["build_logs"], (
            f"{tag}: {name} build logs diverged: "
            f"{outcome['build_logs']} vs {oracle['build_logs']}"
        )
    _check_stats_invariants(seed, spec, outcomes)
    return {
        "seed": seed,
        "n_servers": spec["n_servers"],
        "protocol": spec["protocol"],
        "n_ops": len(spec["ops"]),
        "round_trips": {
            name: outcomes[name]["stats"]["round_trips"] for name in CONFIGS
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench.conformance``)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="randomized differential conformance harness for the "
        "dOpenCL forwarding pipeline"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="run exactly this seed (reproduce a failure)",
    )
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="number of consecutive seeds to run when --seed is absent",
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed of the soak range"
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="override the per-program op count"
    )
    parser.add_argument(
        "--servers", type=int, default=None, help="override the server count"
    )
    parser.add_argument(
        "--clients", type=int, default=1,
        help="run each seed as a multi-client program-of-programs with "
        "this many tenants (differential: every client vs its solo run)",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="run the fault-schedule matrix (every schedule per seed) "
        "instead of the configuration differential",
    )
    parser.add_argument(
        "--schedule", default=None,
        choices=RECOVERABLE_SCHEDULES + UNRECOVERABLE_SCHEDULES
        + PUSH_SCHEDULES + DEFERRED_READ_SCHEDULES,
        help="with --faults: run only this schedule",
    )
    args = parser.parse_args(argv)
    seeds = [args.seed] if args.seed is not None else list(
        range(args.start, args.start + args.seeds)
    )
    if args.faults:
        return _main_faults(seeds, args.schedule)
    if args.clients > 1:
        return _main_multi(seeds, args.clients, args.ops, args.servers)
    failures = 0
    for seed in seeds:
        try:
            summary = run_seed(seed, n_ops=args.ops, n_servers=args.servers)
        except AssertionError as exc:
            failures += 1
            print(f"seed {seed}: FAIL — {exc}")
        else:
            rt = summary["round_trips"]
            print(
                f"seed {seed}: ok ({summary['protocol']}, "
                f"{summary['n_servers']} servers, {summary['n_ops']} ops; "
                f"round trips sync={rt['sync']} batched={rt['batched']} "
                f"coalesced_off={rt['coalesced_off']} "
                f"coalesced_on={rt['coalesced_on']} cache_off={rt['cache_off']} "
                f"push_off={rt['push_off']})"
            )
    if failures:
        print(f"{failures}/{len(seeds)} seeds diverged")
        return 1
    print(f"all {len(seeds)} seeds conform")
    return 0


def _main_multi(
    seeds: List[int], n_clients: int, n_ops: Optional[int], n_servers: Optional[int]
) -> int:
    """The ``--clients N`` soak loop: every seed as a multi-tenant
    program-of-programs, each client diffed against its solo run."""
    failures = 0
    for seed in seeds:
        try:
            summary = run_multi_seed(seed, n_clients, n_ops=n_ops, n_servers=n_servers)
        except AssertionError as exc:
            failures += 1
            print(f"seed {seed} clients {n_clients}: FAIL — {exc}")
        else:
            print(
                f"seed {seed} clients {n_clients}: ok ({summary['protocol']}, "
                f"{summary['n_servers']} servers, {summary['n_ops']} ops, "
                f"{summary['round_trips']} aggregate round trips)"
            )
    if failures:
        print(f"{failures}/{len(seeds)} multi-client seeds diverged")
        return 1
    print(f"all {len(seeds)} multi-client seeds conform ({n_clients} clients each)")
    return 0


def _main_faults(seeds: List[int], schedule: Optional[str]) -> int:
    """The ``--faults`` soak loop: every (seed, schedule) combination."""
    schedules = (
        (schedule,)
        if schedule
        else RECOVERABLE_SCHEDULES + UNRECOVERABLE_SCHEDULES
        + PUSH_SCHEDULES + DEFERRED_READ_SCHEDULES
    )
    failures = 0
    combos = 0
    for seed in seeds:
        for name in schedules:
            combos += 1
            try:
                if name in PUSH_SCHEDULES:
                    summary = run_push_fault_seed(seed)
                    print(
                        f"seed {seed} schedule {name}: ok "
                        f"(fired={summary['fired']} "
                        f"commits {summary['baseline_commits']}->"
                        f"{summary['faulted_commits']})"
                    )
                    continue
                if name in DEFERRED_READ_SCHEDULES:
                    summary = run_deferred_read_fault_seed(seed)
                    print(
                        f"seed {seed} schedule {name}: ok "
                        f"(fired={summary['fired']} "
                        f"deferred {summary['baseline_deferred']}->"
                        f"{summary['faulted_deferred']})"
                    )
                    continue
                summary = run_seed_with_faults(seed, name)
            except AssertionError as exc:
                failures += 1
                print(f"seed {seed} schedule {name}: FAIL — {exc}")
            else:
                print(
                    f"seed {seed} schedule {name}: ok "
                    f"(fired={summary['fired']} retries={summary['retries']} "
                    f"errors={summary['errors']} dead={summary['dead_daemons']})"
                )
    if failures:
        print(f"{failures}/{combos} fault combinations diverged")
        return 1
    print(f"all {combos} fault combinations conform")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
