"""Randomized differential conformance harness for the forwarding pipeline.

Four PRs of deferral/coalescing machinery now interact — send windows,
handle promises, dependency-tracked prefix flushing, ``clFlush``
submission barriers, transfer coalescing in every direction and
coalesced result reads.  Each optimisation is unit-tested in isolation;
what this harness locks down is their *composition*: a seeded generator
builds small workload DAGs (multi-queue kernels, user-event gating,
blocking and non-blocking transfers, ``clFlush``/``clFinish``, mid-run
creation failures) and runs each program under four pipeline
configurations:

* ``sync`` — batching fully disabled, every extension off (one round
  trip per forwarded call: the semantics oracle);
* ``batched`` — send windows, deferred relays and handle promises on,
  every coalescing knob off;
* ``coalesced_off`` — the full pipeline with ``coalesce_reads=False``
  (the read-coalescing ablation mirror);
* ``coalesced_on`` — everything on (the shipping default).

The paper's headline property is that dOpenCL preserves *unmodified
OpenCL semantics*; the pipeline being "just" a communication
optimisation means every configuration must produce **bit-identical
buffer contents**, **identical coherence-directory state** and the same
error behaviour, while the ``NetStats`` counters obey the structural
invariants each configuration promises (a sync run never batches, an
ablated run never fuses, more machinery never costs more round trips).
Any divergence is reported with the generating seed so the exact
program can be replayed.

Runnable outside tier-1 for soak testing::

    PYTHONPATH=src python -m repro.bench.conformance --seeds 200
    PYTHONPATH=src python -m repro.bench.conformance --seed 1234567

(pocl's approach: a reproducible, seed-driven conformance suite is what
lets an OpenCL runtime refactor aggressively without regressing
semantics.)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.cluster import make_ib_cpu_cluster
from repro.ocl.constants import (
    CL_MEM_COPY_HOST_PTR,
    CL_MEM_READ_WRITE,
    CL_MEM_WRITE_ONLY,
)
from repro.ocl.errors import CLError
from repro.testbed import deploy_dopencl

#: Elements per conformance buffer (float32), kept small so a tier-1
#: run of many seeds stays inside the time budget.
BUFFER_ELEMS = 64

#: The four pipeline configurations every generated program runs under
#: (see the module docstring).  ``sync`` is the oracle.
CONFIGS: Dict[str, Dict[str, object]] = {
    "sync": dict(
        batch_window=0,
        defer_event_relays=False,
        coalesce_uploads=False,
        defer_creations=False,
        coalesce_transfers=False,
        coalesce_reads=False,
    ),
    "batched": dict(
        coalesce_uploads=False,
        coalesce_transfers=False,
        coalesce_reads=False,
    ),
    "coalesced_off": dict(coalesce_reads=False),
    "coalesced_on": {},
}

#: Kernels the generator draws from: one pure producer, one
#: read-modify-write, one two-input combiner (the shapes that exercise
#: coherence plans in every direction).
PROGRAM_SOURCE = """
__kernel void fill(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = f + i;
}
__kernel void scale(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = x[i] * f + 1.0f;
}
__kernel void sum2(__global float *out, __global const float *a,
                   __global const float *b, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) out[i] = a[i] + b[i];
}
"""

#: Kernel name -> (arg layout tag).  ``fill``/``scale`` take
#: ``(buffer, float, n)``; ``sum2`` takes ``(out, a, b, n)``.
KERNELS = ("fill", "scale", "sum2")


def generate_program(
    seed: int, n_ops: Optional[int] = None, n_servers: Optional[int] = None
) -> Dict[str, object]:
    """Generate one random workload DAG from ``seed``.

    Returns a *program spec* — a plain dict of setup parameters plus an
    op list — that :func:`run_program` interprets identically under any
    pipeline configuration (all randomness, including payload data, is
    drawn here, never at run time).

    Generation maintains two safety rules that keep every program
    deterministic and deadlock-free by construction:

    * before any op that synchronises (a read, a ``clFinish``, the
      creation-failure probe), every still-unset user event is set —
      a blocking sync whose closure reaches a command gated on an
      unset user event would otherwise deadlock (in real OpenCL too);
    * the failed creation is released immediately after its error is
      observed, so the poisoned handle never entangles later ops.
    """
    rng = random.Random(seed)
    servers = n_servers if n_servers is not None else rng.choice([2, 3])
    protocol = rng.choice(["msi", "mosi"])
    n_buffers = rng.randint(3, 5)
    # One queue per device, plus 0-2 extra queues on random devices —
    # the multi-queue-per-daemon shape clFlush barriers order.
    extra_queues = [rng.randrange(servers) for _ in range(rng.randint(0, 2))]
    queue_devices = list(range(servers)) + extra_queues
    buffer_inits = [
        [round(rng.uniform(-4.0, 4.0), 3) for _ in range(BUFFER_ELEMS)]
        for _ in range(n_buffers)
    ]
    ops: List[Tuple] = []
    unset_events: List[int] = []
    n_events = 0

    def set_pending_events() -> None:
        while unset_events:
            ops.append(("set_event", unset_events.pop(0)))

    count = n_ops if n_ops is not None else rng.randint(8, 14)
    emitted_bad_create = False
    for _ in range(count):
        kind = rng.choices(
            ["kernel", "write", "read", "read_nb", "flush", "finish",
             "user_event", "bad_create"],
            weights=[5, 2, 2, 1, 2, 1, 2, 1],
        )[0]
        qi = rng.randrange(len(queue_devices))
        if kind == "kernel":
            name = rng.choice(KERNELS)
            if name == "sum2":
                args = (rng.randrange(n_buffers), rng.randrange(n_buffers),
                        rng.randrange(n_buffers))
            else:
                args = (rng.randrange(n_buffers),)
            gate = None
            if n_events and rng.random() < 0.35:
                gate = rng.randrange(n_events)
            scalar = round(rng.uniform(0.5, 2.0), 3)
            ops.append(("kernel", name, qi, args, scalar, gate))
        elif kind == "write":
            blocking = rng.random() < 0.5
            bi = rng.randrange(n_buffers)
            if rng.random() < 0.3:
                offset_elems = rng.randrange(BUFFER_ELEMS // 2)
                length = rng.randint(1, BUFFER_ELEMS - offset_elems)
                # A partial write read-modify-writes the client copy —
                # a synchronizing fetch, so it falls under the
                # unset-user-event rule like a read.
                set_pending_events()
            else:
                offset_elems, length = 0, BUFFER_ELEMS
            data = [round(rng.uniform(-8.0, 8.0), 3) for _ in range(length)]
            ops.append(("write", bi, qi, blocking, offset_elems, data))
        elif kind == "read":
            set_pending_events()
            ops.append(("read", rng.randrange(n_buffers), qi))
        elif kind == "read_nb":
            set_pending_events()
            ops.append(("read_nb", rng.randrange(n_buffers), qi))
        elif kind == "flush":
            ops.append(("flush", qi))
        elif kind == "finish":
            set_pending_events()
            ops.append(("finish", qi))
        elif kind == "user_event":
            ops.append(("user_event", n_events))
            unset_events.append(n_events)
            n_events += 1
        elif kind == "bad_create" and not emitted_bad_create:
            set_pending_events()
            ops.append(("bad_create",))
            emitted_bad_create = True
    set_pending_events()
    return {
        "seed": seed,
        "n_servers": servers,
        "protocol": protocol,
        "queue_devices": queue_devices,
        "buffer_inits": buffer_inits,
        "ops": ops,
    }


def run_program(spec: Dict[str, object], flags: Dict[str, object]) -> Dict[str, object]:
    """Interpret a program spec under one pipeline configuration.

    Returns the observable outcome the differential comparison keys on:
    ``reads`` (op index -> bytes of every blocking/non-blocking mid-run
    read), ``final`` (buffer index -> bytes after the closing
    full-drain readback), ``directories`` (buffer index -> coherence
    state map), ``errors`` (op indices where a ``CLError`` was
    observed) and the client's ``NetStats`` snapshot.
    """
    deployment = deploy_dopencl(
        make_ib_cpu_cluster(spec["n_servers"]),
        coherence_protocol=spec["protocol"],
        **flags,
    )
    cl = deployment.api
    devices = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0])
    ctx = cl.clCreateContext(devices)
    queues = [cl.clCreateCommandQueue(ctx, devices[d]) for d in spec["queue_devices"]]
    program = cl.clCreateProgramWithSource(ctx, PROGRAM_SOURCE)
    cl.clBuildProgram(program)
    buffers = []
    for init in spec["buffer_inits"]:
        data = np.array(init, dtype=np.float32)
        buffers.append(
            cl.clCreateBuffer(
                ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, data.nbytes, data
            )
        )
    events: Dict[int, object] = {}
    reads: Dict[int, bytes] = {}
    errors: List[int] = []
    for op_index, op in enumerate(spec["ops"]):
        kind = op[0]
        if kind == "kernel":
            _, name, qi, args, scalar, gate = op
            kernel = cl.clCreateKernel(program, name)
            if name == "sum2":
                out, a, b = args
                cl.clSetKernelArg(kernel, 0, buffers[out])
                cl.clSetKernelArg(kernel, 1, buffers[a])
                cl.clSetKernelArg(kernel, 2, buffers[b])
                cl.clSetKernelArg(kernel, 3, BUFFER_ELEMS)
            else:
                cl.clSetKernelArg(kernel, 0, buffers[args[0]])
                cl.clSetKernelArg(kernel, 1, np.float32(scalar))
                cl.clSetKernelArg(kernel, 2, BUFFER_ELEMS)
            wait_for = [events[gate]] if gate is not None else None
            cl.clEnqueueNDRangeKernel(
                queues[qi], kernel, (BUFFER_ELEMS,), wait_for=wait_for
            )
        elif kind == "write":
            _, bi, qi, blocking, offset_elems, data = op
            cl.clEnqueueWriteBuffer(
                queues[qi],
                buffers[bi],
                blocking,
                offset_elems * 4,
                np.array(data, dtype=np.float32),
            )
        elif kind in ("read", "read_nb"):
            _, bi, qi = op
            data, _ev = cl.clEnqueueReadBuffer(
                queues[qi], buffers[bi], blocking=(kind == "read")
            )
            reads[op_index] = data.tobytes()
        elif kind == "flush":
            cl.clFlush(queues[op[1]])
        elif kind == "finish":
            cl.clFinish(queues[op[1]])
        elif kind == "user_event":
            events[op[1]] = cl.clCreateUserEvent(ctx)
        elif kind == "set_event":
            cl.clSetUserEventStatus(events[op[1]], 0)
        elif kind == "bad_create":
            # Mid-run creation failure: conflicting access flags pass
            # the client-side checks but fail daemon-side, so the
            # provisional handle poisons under deferred creations and
            # the error surfaces at the forced sync — while the sync
            # configuration raises at the call itself.  Either way the
            # error is observed at this op and the handle is disposed
            # of (releasing a poisoned handle retires the poison).
            bad = None
            try:
                bad = cl.clCreateBuffer(
                    ctx, CL_MEM_READ_WRITE | CL_MEM_WRITE_ONLY, 4 * BUFFER_ELEMS
                )
            except CLError:
                errors.append(op_index)
            if bad is not None:
                try:
                    cl.clFinish(queues[0])
                except CLError:
                    errors.append(op_index)
                cl.clReleaseMemObject(bad)
    for queue in queues:
        cl.clFinish(queue)
    final: Dict[int, bytes] = {}
    for bi, buffer in enumerate(buffers):
        data, _ev = cl.clEnqueueReadBuffer(queues[0], buffer)
        final[bi] = data.tobytes()
    directories = {
        bi: {party: state.value for party, state in buffer.coherence.state.items()}
        for bi, buffer in enumerate(buffers)
    }
    return {
        "reads": reads,
        "final": final,
        "directories": directories,
        "errors": errors,
        "stats": deployment.driver.stats.snapshot(),
    }


def _check_stats_invariants(seed: int, outcomes: Dict[str, Dict[str, object]]) -> None:
    """The per-configuration ``NetStats`` structural invariants (seed in
    every message so a violation is replayable)."""
    tag = f"seed {seed}"
    sync = outcomes["sync"]["stats"]
    assert sync["batches"] == 0, f"{tag}: sync config dispatched batches"
    assert sync["flush_barriers"] == 0, f"{tag}: sync config recorded barriers"
    assert sync["prefix_flushes"] == 0, f"{tag}: sync config prefix-flushed"
    assert sync["relays_deferred"] == 0, f"{tag}: sync config deferred relays"
    for name in ("sync", "batched", "coalesced_off"):
        stats = outcomes[name]["stats"]
        assert stats["coalesced_reads"] == 0, (
            f"{tag}: {name} config fused result reads with coalesce_reads off"
        )
    for name in ("sync", "batched"):
        stats = outcomes[name]["stats"]
        for key in ("coalesced_uploads", "coalesced_downloads",
                    "coalesced_peer_transfers"):
            assert stats[key] == 0, f"{tag}: {name} config has {key} != 0"
    # The pipeline is a communication optimisation: no deferred
    # configuration may ever spend as much as the synchronous oracle.
    # (The *intra*-pipeline ordering is deliberately not asserted
    # exactly: transfer coalescing reorders execution into download /
    # peer / upload phases, and on adversarial interleavings the phase
    # boundary can shift a window flush by a round trip even while
    # fusing fetches — observed at seed 307.  The deterministic
    # coalescing floors are gated by the smoke benchmark instead.)
    rt = {name: outcomes[name]["stats"]["round_trips"] for name in outcomes}
    for name in ("batched", "coalesced_off", "coalesced_on"):
        assert rt[name] < rt["sync"], (
            f"{tag}: {name} config did not beat the synchronous oracle ({rt})"
        )


def run_seed(
    seed: int, n_ops: Optional[int] = None, n_servers: Optional[int] = None
) -> Dict[str, object]:
    """Generate the program for ``seed``, run it under every
    configuration and assert the differential properties; returns a
    summary (op count, per-config round trips) for reporting.

    Every assertion message carries the seed, so a failing run is
    reproduced exactly with ``python -m repro.bench.conformance --seed
    <seed>`` (or by parametrising the tier-1 test with it)."""
    spec = generate_program(seed, n_ops=n_ops, n_servers=n_servers)
    outcomes = {name: run_program(spec, flags) for name, flags in CONFIGS.items()}
    oracle = outcomes["sync"]
    tag = f"seed {seed}"
    for name, outcome in outcomes.items():
        assert outcome["errors"] == oracle["errors"], (
            f"{tag}: {name} observed errors at ops {outcome['errors']}, "
            f"sync at {oracle['errors']}"
        )
        assert outcome["reads"].keys() == oracle["reads"].keys(), (
            f"{tag}: {name} performed different reads"
        )
        for op_index, payload in oracle["reads"].items():
            assert outcome["reads"][op_index] == payload, (
                f"{tag}: {name} read at op {op_index} diverged from sync"
            )
        for bi, payload in oracle["final"].items():
            assert outcome["final"][bi] == payload, (
                f"{tag}: {name} final contents of buffer {bi} diverged from sync"
            )
        assert outcome["directories"] == oracle["directories"], (
            f"{tag}: {name} directory state diverged: "
            f"{outcome['directories']} vs {oracle['directories']}"
        )
    _check_stats_invariants(seed, outcomes)
    return {
        "seed": seed,
        "n_servers": spec["n_servers"],
        "protocol": spec["protocol"],
        "n_ops": len(spec["ops"]),
        "round_trips": {
            name: outcomes[name]["stats"]["round_trips"] for name in CONFIGS
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench.conformance``)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="randomized differential conformance harness for the "
        "dOpenCL forwarding pipeline"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="run exactly this seed (reproduce a failure)",
    )
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="number of consecutive seeds to run when --seed is absent",
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed of the soak range"
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="override the per-program op count"
    )
    parser.add_argument(
        "--servers", type=int, default=None, help="override the server count"
    )
    args = parser.parse_args(argv)
    seeds = [args.seed] if args.seed is not None else list(
        range(args.start, args.start + args.seeds)
    )
    failures = 0
    for seed in seeds:
        try:
            summary = run_seed(seed, n_ops=args.ops, n_servers=args.servers)
        except AssertionError as exc:
            failures += 1
            print(f"seed {seed}: FAIL — {exc}")
        else:
            rt = summary["round_trips"]
            print(
                f"seed {seed}: ok ({summary['protocol']}, "
                f"{summary['n_servers']} servers, {summary['n_ops']} ops; "
                f"round trips sync={rt['sync']} batched={rt['batched']} "
                f"coalesced_off={rt['coalesced_off']} "
                f"coalesced_on={rt['coalesced_on']})"
            )
    if failures:
        print(f"{failures}/{len(seeds)} seeds diverged")
        return 1
    print(f"all {len(seeds)} seeds conform")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
