"""Experiment records and table rendering for the benchmark suite.

Each figure-level benchmark produces an :class:`ExperimentRecord` — the
rows the paper's figure plots — which is printed, saved under
``benchmarks/results/`` and shape-checked by assertions in the benchmark
itself.  EXPERIMENTS.md collects the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: The repository root (three levels above this package) — the single
#: place benchmark snapshots (``BENCH_*.json``), the results directory
#: and the benchdiff regression checker derive their paths from.
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", ".."))


@dataclass
class ExperimentRecord:
    """Rows of one reproduced figure."""

    experiment: str  # e.g. "fig4"
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def select(self, **filters: object) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}"
    return str(value)


def format_table(record: ExperimentRecord) -> str:
    """Render a record as a fixed-width text table."""
    headers = list(record.columns)
    cells = [[_fmt(row.get(col, "")) for col in headers] for row in record.rows]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"== {record.experiment}: {record.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if record.notes:
        lines.append(f"note: {record.notes}")
    return "\n".join(lines)


def save_record(record: ExperimentRecord, directory: Optional[str] = None) -> str:
    """Write the table (.txt) and raw rows (.json); returns the txt path."""
    if directory is None:
        directory = os.path.join(REPO_ROOT, "benchmarks", "results")
    directory = os.path.abspath(directory)
    os.makedirs(directory, exist_ok=True)
    txt_path = os.path.join(directory, f"{record.experiment}.txt")
    with open(txt_path, "w") as fh:
        fh.write(format_table(record) + "\n")
    with open(os.path.join(directory, f"{record.experiment}.json"), "w") as fh:
        json.dump(
            {
                "experiment": record.experiment,
                "title": record.title,
                "notes": record.notes,
                "rows": record.rows,
            },
            fh,
            indent=2,
            default=str,
        )
    return txt_path
