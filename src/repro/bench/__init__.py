"""Benchmark harness: experiment runners for every figure in Section V,
plus the fast call-forwarding smoke target (import :mod:`repro.bench.smoke`
directly — it pulls in the full app/deployment stack, so it is not
re-exported here)."""

from repro.bench.harness import ExperimentRecord, format_table, save_record

__all__ = ["ExperimentRecord", "format_table", "save_record"]
