"""Benchmark harness: experiment runners for every figure in Section V."""

from repro.bench.harness import ExperimentRecord, format_table, save_record

__all__ = ["ExperimentRecord", "format_table", "save_record"]
