"""Multi-client contention benchmark: one GPU server, 1..256 tenants.

The Section V-C testbed scaled past the paper's four desktops: ``N``
client applications (one driver per client host) share the *same* GPU
server, each running a small fixed kernel-and-sync workload on the GPU
``N mod 4``.  Because daemon CPU time is a shared
:class:`~repro.sim.timeline.Timeline`, contention is real in virtual
time: every client's sync points queue behind its neighbours' command
handling, so the run measures exactly the multi-tenancy properties the
daemon refactor claims —

* **aggregate throughput** (kernel launches per virtual second across
  all clients, at the slowest client's makespan);
* **p99 sync-point latency** (each round ends in one blocking
  ``clFinish`` per client; the distribution's tail is where unfair
  scheduling would show first);
* **max/min fairness ratio** across the four GPU tenant groups (each
  group's makespan is its slowest tenant's finish time; the groups are
  symmetric, so a ratio far from 1 means the daemon systematically
  serves one device's tenants ahead of another's — per-*client*
  makespans inside a group are expected to spread, because
  simultaneously-arriving requests are served in order and someone is
  necessarily last);
* **shared decode-cache hits** (all clients submit the byte-identical
  program source, so ``N`` tenants pay for ~one decode — the shared
  :class:`~repro.net.messages.WireDecodeCache` payoff under contention).

The simulation is deterministic, so every headline number is an exact
property of the code: ``BENCH_multiclient.json`` is gated *exactly* (no
tolerance) by :mod:`repro.tools.benchdiff` in tier-1.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import REPO_ROOT, ExperimentRecord
from repro.hw.cluster import make_multi_client_gpu_server
from repro.ocl.constants import CL_DEVICE_TYPE_GPU, CL_MEM_WRITE_ONLY
from repro.testbed import deploy_dopencl

#: Client counts the contention sweep runs at (the paper's Fig. 6 stops
#: at 4 desktops; the tail shows whether fairness and the shared caches
#: survive two orders of magnitude more tenants).
SCALES = (1, 8, 64, 256)

#: Rounds per client; every round is one kernel launch plus one blocking
#: sync point (``clFinish``), so each client contributes ``ROUNDS``
#: latency samples.
ROUNDS = 3

#: Elements in each client's private work buffer.
BUFFER_ELEMS = 32

#: Every client submits this byte-identical source, so the daemon's
#: shared decode cache answers all but the first build's decode.
MULTI_SOURCE = """
__kernel void fill(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = f + i;
}
"""

#: Acceptance ceiling on the device-group fairness ratio: the slowest
#: tenant of every GPU must finish within this factor of the slowest
#: tenant of every other GPU, at every scale.
MAX_FAIRNESS_RATIO = 1.5


def p99(samples: List[float]) -> float:
    """Deterministic 99th percentile (nearest-rank) of ``samples``."""
    ordered = sorted(samples)
    rank = max(math.ceil(0.99 * len(ordered)), 1)
    return ordered[rank - 1]


def _run_scale(n_clients: int) -> Dict[str, object]:
    """One contention run at ``n_clients`` tenants; returns the row."""
    deployment = deploy_dopencl(
        make_multi_client_gpu_server(n_clients), n_clients=n_clients
    )
    clients = []
    for ci in range(n_clients):
        cl = deployment.apis[ci]
        platform = cl.clGetPlatformIDs()[0]
        gpus = cl.clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU)
        device = gpus[ci % len(gpus)]
        ctx = cl.clCreateContext([device])
        queue = cl.clCreateCommandQueue(ctx, device)
        program = cl.clCreateProgramWithSource(ctx, MULTI_SOURCE)
        cl.clBuildProgram(program)
        buf = cl.clCreateBuffer(ctx, CL_MEM_WRITE_ONLY, BUFFER_ELEMS * 4)
        # Settle the (deferred) build inside setup: the measured rounds
        # are steady-state contention, and the one compile the whole
        # tenant fleet pays — every later tenant is a daemon build-cache
        # hit — must not land in some tenant's round-1 latency sample.
        cl.clFinish(queue)
        clients.append(
            {
                "cl": cl,
                "ctx": ctx,
                "queue": queue,
                "program": program,
                "buf": buf,
                "group": ci % len(gpus),
            }
        )
    latencies: List[float] = []
    for _ in range(ROUNDS):
        # Round-robin interleave: all launches land before any client
        # syncs, so the sync points genuinely contend on the daemon.
        for state in clients:
            cl = state["cl"]
            kernel = cl.clCreateKernel(state["program"], "fill")
            cl.clSetKernelArg(kernel, 0, state["buf"])
            cl.clSetKernelArg(kernel, 1, np.float32(1.0))
            cl.clSetKernelArg(kernel, 2, BUFFER_ELEMS)
            cl.clEnqueueNDRangeKernel(state["queue"], kernel, (BUFFER_ELEMS,))
        for state in clients:
            cl = state["cl"]
            start = cl.now
            cl.clFinish(state["queue"])
            latencies.append(cl.now - start)
    for state in clients:
        # Result gather: one blocking read per tenant ends its run.
        state["cl"].clEnqueueReadBuffer(state["queue"], state["buf"])
    makespans = [state["cl"].now for state in clients]
    group_makespans: Dict[int, float] = {}
    for state, makespan in zip(clients, makespans):
        group = state["group"]
        group_makespans[group] = max(group_makespans.get(group, 0.0), makespan)
    launches = n_clients * ROUNDS
    makespan_max, makespan_min = max(makespans), min(makespans)
    daemons = deployment.daemons
    return {
        "n_clients": n_clients,
        "launches": launches,
        "makespan_max": makespan_max,
        "makespan_min": makespan_min,
        "fairness_ratio": max(group_makespans.values()) / min(group_makespans.values()),
        "throughput": launches / makespan_max,
        "p99_sync_latency": p99(latencies),
        "decode_cache_hits": sum(d.gcf.stats.decode_cache_hits for d in daemons),
        "reply_cache_hits": sum(d.gcf.stats.reply_cache_hits for d in daemons),
        "programs_built": sum(d.gcf.stats.programs_built for d in daemons),
        "build_cache_hits": sum(d.gcf.stats.build_cache_hits for d in daemons),
        "build_seconds_saved": sum(d.gcf.stats.build_seconds_saved for d in daemons),
        "dropped_event_statuses": sum(
            d.gcf.stats.dropped_event_statuses for d in daemons
        ),
        "refused_connections": sum(d.gcf.stats.refused_connections for d in daemons),
        "quota_rejections": sum(d.gcf.stats.quota_rejections for d in daemons),
    }


def bench_multiclient(scales=SCALES) -> ExperimentRecord:
    """Run the contention sweep at every scale (one row per client
    count)."""
    record = ExperimentRecord(
        experiment="bench_multiclient",
        title="Multi-tenant contention: throughput, p99 sync latency, fairness",
        columns=[
            "n_clients",
            "launches",
            "makespan_max",
            "makespan_min",
            "fairness_ratio",
            "throughput",
            "p99_sync_latency",
            "decode_cache_hits",
            "reply_cache_hits",
            "programs_built",
            "build_cache_hits",
            "build_seconds_saved",
            "dropped_event_statuses",
            "refused_connections",
            "quota_rejections",
        ],
        notes=(
            f"{ROUNDS} kernel+clFinish rounds per client on one shared GPU "
            f"server, clients round-robin over its 4 GPUs; acceptance: "
            f"device-group fairness ratio <= {MAX_FAIRNESS_RATIO} at every "
            "scale, no dropped statuses / refusals, shared decode cache "
            "engages from 8 tenants on, and the whole fleet pays exactly "
            "one program compile (every later tenant is a build-cache hit)"
        ),
    )
    for n_clients in scales:
        record.add(**_run_scale(n_clients))
    return record


def assert_multiclient_record(record: ExperimentRecord) -> None:
    """The multi-tenancy gate, shared by the tier-1 test and the
    benchmark target: symmetric tenants stay fair, the latency tail and
    throughput are well-formed, the shared decode cache genuinely pays
    once more than one tenant submits the identical source, and no
    multi-tenant pathology (dropped statuses, refused connections, quota
    rejections) occurred."""
    assert [row["n_clients"] for row in record.rows] == sorted(
        row["n_clients"] for row in record.rows
    )
    for row in record.rows:
        assert row["launches"] == row["n_clients"] * ROUNDS
        assert 0.0 < row["makespan_min"] <= row["makespan_max"]
        assert 1.0 <= row["fairness_ratio"] <= MAX_FAIRNESS_RATIO, (
            f"{row['n_clients']} clients: unfair device-group makespans "
            f"(ratio {row['fairness_ratio']:.3f})"
        )
        assert row["throughput"] > 0.0
        assert row["p99_sync_latency"] > 0.0
        assert row["dropped_event_statuses"] == 0
        assert row["refused_connections"] == 0
        assert row["quota_rejections"] == 0
        # The content-addressed build cache holds at every scale: the
        # shared source compiles exactly once, every other tenant hits.
        assert row["programs_built"] == 1
        assert row["build_cache_hits"] == row["n_clients"] - 1
        if row["n_clients"] > 1:
            assert row["build_seconds_saved"] > 0.0
    rows = {row["n_clients"]: row for row in record.rows}
    multi = [row for n, row in rows.items() if n > 1]
    for row in multi:
        # N identical tenants pay ~one decode for the shared source.
        assert row["decode_cache_hits"] > rows[min(rows)]["decode_cache_hits"]
    # Contention is real: the latency tail grows with tenant count.
    scales = sorted(rows)
    for lighter, heavier in zip(scales, scales[1:]):
        assert rows[heavier]["p99_sync_latency"] >= rows[lighter]["p99_sync_latency"]


def multiclient_payload(record: ExperimentRecord) -> dict:
    """The headline numbers of a contention sweep as the flat dict
    committed to ``BENCH_multiclient.json`` — shared by
    :func:`save_multiclient_json` and the benchdiff regression checker,
    so the recorded snapshot and the comparison can never drift apart.
    Every per-scale key is gated exactly (the simulation is
    deterministic)."""
    rows = {row["n_clients"]: row for row in record.rows}
    payload: Dict[str, object] = {
        "experiment": record.experiment,
        "rounds": ROUNDS,
        "scales": list(rows),
        "max_fairness_ratio": MAX_FAIRNESS_RATIO,
    }
    for n_clients, row in rows.items():
        payload[f"throughput_{n_clients}"] = row["throughput"]
        payload[f"p99_sync_latency_{n_clients}"] = row["p99_sync_latency"]
        payload[f"fairness_ratio_{n_clients}"] = row["fairness_ratio"]
        payload[f"decode_cache_hits_{n_clients}"] = row["decode_cache_hits"]
        payload[f"programs_built_{n_clients}"] = row["programs_built"]
        payload[f"build_cache_hits_{n_clients}"] = row["build_cache_hits"]
    return payload


def save_multiclient_json(record: ExperimentRecord, directory: Optional[str] = None) -> str:
    """Write the headline numbers to ``BENCH_multiclient.json`` (repo
    root by default); returns the path."""
    if directory is None:
        directory = REPO_ROOT
    path = os.path.join(directory, "BENCH_multiclient.json")
    with open(path, "w") as fh:
        json.dump(multiclient_payload(record), fh, indent=2)
    return path
