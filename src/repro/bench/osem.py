"""OSEM-iteration perf smoke: the reply cache under a real repeated-arg
workload.

The daemon's :class:`~repro.net.messages.ReplyCache` (and decode cache)
were built for workloads that *re-send byte-identical commands* — the
synthetic unit tests prove the mechanism, this benchmark proves the
payoff on an actual application: list-mode OSEM (the paper's Fig. 5
study) re-binds the same kernel arguments every subset of every
iteration, so from the second iteration on nearly all of its forwarded
command traffic is answered from the caches.

The workload is the Fig. 5 offload scenario shrunk to the tier-1 time
budget: the desktop reconstructs on the remote GPU server's 4 devices
through dOpenCL.  Per iteration we record the client's round trips and
the daemons' aggregate reply/decode-cache hits; the gate asserts the
caches genuinely engage (hits comparable to the sub-commands sent) and
that iterations are steady-state (constant round trips).  Headline
counters land in ``BENCH_osem.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.apps.osem import ListModeOSEM, disk_phantom, generate_events
from repro.bench.harness import REPO_ROOT, ExperimentRecord
from repro.hw.cluster import make_desktop_and_gpu_server, make_ib_cpu_cluster
from repro.ocl.constants import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl

#: Reduced Fig. 5 configuration (same call pattern, tier-1 budget).
OSEM_IMAGE_SIZE = 24
OSEM_SUBSETS = 2
OSEM_SAMPLES = 24
OSEM_EVENTS = 2000
OSEM_ITERATIONS = 3

#: Gate: from the second iteration on, at least this fraction of an
#: iteration's batched sub-commands must be answered from the daemon
#: reply cache (in practice it is ~100%: the arg values repeat exactly).
MIN_STEADY_STATE_HIT_RATIO = 0.5

#: Servers in the repeat-setup cluster phase (the program-cache floor:
#: two tenants building the identical source on this many daemons must
#: compile exactly once cluster-wide).
CLUSTER_SERVERS = 3

#: The shared source of the cluster repeat-setup phase.
CLUSTER_SOURCE = """
__kernel void saxpy(__global float *y, __global const float *x,
                    const float a, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) y[i] = a * x[i] + y[i];
}
"""


def _setup_round_trips(program_cache: bool) -> int:
    """Round trips one OSEM setup costs on a fresh Fig. 5 deployment
    with the program cache on or off — the ablation pair the snapshot
    gates (cache-on drops the synchronous build fan-out)."""
    deployment = deploy_dopencl(make_desktop_and_gpu_server(), program_cache=program_cache)
    api = deployment.api
    gpus = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    osem = ListModeOSEM(
        api, gpus, image_size=OSEM_IMAGE_SIZE, n_subsets=OSEM_SUBSETS, n_samples=OSEM_SAMPLES
    )
    events = generate_events(disk_phantom(OSEM_IMAGE_SIZE), OSEM_EVENTS, seed=7)
    before = deployment.driver.stats.round_trips
    osem.setup(events)
    return deployment.driver.stats.round_trips - before


def _iteration_round_trips_push_off() -> int:
    """Steady-state iteration round trips with ``push_transfers=False``
    on a fresh Fig. 5 deployment — the PR-9 ablation cell: demand-driven
    coherence pays one gang fetch per subset that predictive pushes move
    off the client's critical path."""
    deployment = deploy_dopencl(
        make_desktop_and_gpu_server(), push_transfers=False
    )
    api = deployment.api
    gpus = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    osem = ListModeOSEM(
        api, gpus, image_size=OSEM_IMAGE_SIZE, n_subsets=OSEM_SUBSETS, n_samples=OSEM_SAMPLES
    )
    events = generate_events(disk_phantom(OSEM_IMAGE_SIZE), OSEM_EVENTS, seed=7)
    osem.setup(events)
    before = 0
    for _ in range(OSEM_ITERATIONS):
        before = deployment.driver.stats.round_trips
        osem.iterate()
    return deployment.driver.stats.round_trips - before


def _cluster_repeat_setup() -> dict:
    """The cluster-wide build floor: two tenants build the identical
    source on a :data:`CLUSTER_SERVERS`-daemon cluster.  The first
    tenant's build compiles on one daemon and ships the binary to the
    siblings; every other resolution — the first tenant's other two
    daemons and all three of the second tenant's — is a build-cache
    hit.  Returns the cluster-aggregate build counters."""
    deployment = deploy_dopencl(
        make_ib_cpu_cluster(CLUSTER_SERVERS, n_clients=2), n_clients=2
    )
    for api in deployment.apis:
        devices = api.clGetDeviceIDs(api.clGetPlatformIDs()[0])
        ctx = api.clCreateContext(devices)
        queue = api.clCreateCommandQueue(ctx, devices[0])
        program = api.clCreateProgramWithSource(ctx, CLUSTER_SOURCE)
        api.clBuildProgram(program)
        api.clFinish(queue)
    daemons = deployment.daemons
    return {
        "programs_built": sum(d.gcf.stats.programs_built for d in daemons),
        "binaries_shipped": sum(d.gcf.stats.binaries_shipped for d in daemons),
        "build_cache_hits": sum(d.gcf.stats.build_cache_hits for d in daemons),
        "build_seconds_saved": sum(d.gcf.stats.build_seconds_saved for d in daemons),
    }


def bench_osem() -> ExperimentRecord:
    """Run the mini Fig. 5 OSEM offload and record per-iteration
    round-trip and cache-hit counters (one row per iteration, plus the
    setup row, the cache-off ablation setup and the cluster repeat-setup
    build-floor phase)."""
    record = ExperimentRecord(
        experiment="bench_osem",
        title="OSEM iterations: daemon reply-cache payoff on repeated kernel args",
        columns=[
            "phase",
            "round_trips",
            "batched_commands",
            "reply_cache_hits",
            "decode_cache_hits",
            "hit_ratio",
            "bytes_sent",
            "programs_built",
        ],
        notes=(
            f"{OSEM_IMAGE_SIZE}x{OSEM_IMAGE_SIZE} image, {OSEM_SUBSETS} subsets, "
            f"{OSEM_EVENTS} events, {OSEM_ITERATIONS} iterations on the Fig. 5 "
            "desktop->GPU-server offload; acceptance: steady-state iterations "
            f"answer >= {MIN_STEADY_STATE_HIT_RATIO:.0%} of batched sub-commands "
            "from the daemon reply cache, at constant round trips; the "
            "program build cache drops setup round trips vs the cache-off "
            f"ablation, two tenants on {CLUSTER_SERVERS} daemons compile "
            "the shared source exactly once cluster-wide, and predictive "
            "pushes (push_transfers) hold steady-state iteration round "
            "trips strictly below the push-off ablation"
        ),
    )
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    api = deployment.api
    driver = deployment.driver
    daemons = deployment.daemons
    gpus = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    osem = ListModeOSEM(
        api, gpus, image_size=OSEM_IMAGE_SIZE, n_subsets=OSEM_SUBSETS, n_samples=OSEM_SAMPLES
    )
    events = generate_events(disk_phantom(OSEM_IMAGE_SIZE), OSEM_EVENTS, seed=7)

    def counters():
        return {
            "round_trips": driver.stats.round_trips,
            "batched_commands": driver.stats.batched_commands,
            "reply_cache_hits": sum(d.gcf.stats.reply_cache_hits for d in daemons),
            "decode_cache_hits": sum(d.gcf.stats.decode_cache_hits for d in daemons),
            "bytes_sent": driver.stats.bytes_sent,
            "programs_built": sum(d.gcf.stats.programs_built for d in daemons),
        }

    def add_row(phase: str, before, after) -> None:
        delta = {k: after[k] - before[k] for k in before}
        commands = delta["batched_commands"]
        record.add(
            phase=phase,
            hit_ratio=(delta["reply_cache_hits"] / commands) if commands else 0.0,
            **delta,
        )

    before = counters()
    osem.setup(events)
    add_row("setup", before, counters())
    for i in range(OSEM_ITERATIONS):
        before = counters()
        osem.iterate()
        add_row(f"iteration_{i + 1}", before, counters())
    # Push-protocol verdict for the whole run (counters are cumulative,
    # so they are read once after the last iteration): the client's
    # hint/commit/waste tally plus the daemons' aggregate executions.
    record.add(
        phase="push_counters",
        speculative_pushes=driver.stats.speculative_pushes,
        daemon_pushes=sum(d.gcf.stats.daemon_pushes for d in daemons),
        push_bytes=sum(d.gcf.stats.push_bytes for d in daemons),
        push_commits=driver.stats.push_commits,
        wasted_pushes=driver.stats.wasted_pushes,
    )
    # Ablation cells + cluster floor, on their own fresh deployments so
    # the iteration rows above stay untouched by the extra phases.
    record.add(phase="setup_cache_off", round_trips=_setup_round_trips(False))
    record.add(phase="iteration_push_off", round_trips=_iteration_round_trips_push_off())
    record.add(phase="cluster_repeat_setup", **_cluster_repeat_setup())
    return record


def assert_osem_record(record: ExperimentRecord) -> None:
    """The OSEM smoke gate: the reply cache pays off outside synthetic
    tests, iterations are steady-state, and the program build cache
    holds its floors (setup round trips drop vs the ablation; one
    compile per unique source cluster-wide)."""
    iterations = [
        row
        for row in record.rows
        if row["phase"].startswith("iteration_") and row["phase"][10:].isdigit()
    ]
    assert len(iterations) == OSEM_ITERATIONS
    steady = iterations[1:]
    for row in steady:
        assert row["batched_commands"] > 0
        assert row["hit_ratio"] >= MIN_STEADY_STATE_HIT_RATIO
    # Steady state is genuinely steady: identical communication per
    # iteration (round trips and cache hits), so the cache is not
    # living off a one-time warm-up effect.
    assert len({row["round_trips"] for row in steady}) == 1
    assert len({row["reply_cache_hits"] for row in steady}) == 1
    # And the cache engaged already during the first iteration (the
    # subsets within one iteration repeat arguments too).
    assert iterations[0]["reply_cache_hits"] > 0
    rows = {row["phase"]: row for row in record.rows}
    # PR-9 gate: predictive pushes take the steady-state gang fetch off
    # the client's critical path — every iteration costs strictly fewer
    # round trips than the push-off ablation, the pushes genuinely
    # commit, and the structural invariant
    # ``push_commits + wasted_pushes <= daemon_pushes <=
    # speculative_pushes`` holds for the whole run.
    push = rows["push_counters"]
    for row in steady:
        assert row["round_trips"] < rows["iteration_push_off"]["round_trips"]
    assert push["push_commits"] > 0
    assert (
        push["push_commits"] + push["wasted_pushes"]
        <= push["daemon_pushes"]
        <= push["speculative_pushes"]
    )
    # The deferred cached build removes the synchronous build fan-out
    # from setup; the ablation pays it.
    assert rows["setup"]["round_trips"] < rows["setup_cache_off"]["round_trips"]
    # OSEM builds one program; the offload daemon compiles it once.
    assert rows["setup"]["programs_built"] == 1
    # The hard cluster floor: 2 tenants x CLUSTER_SERVERS daemons, one
    # unique (source, options) pair -> exactly one compile, the binary
    # shipped to every sibling, everything else a cache hit.
    cluster = rows["cluster_repeat_setup"]
    assert cluster["programs_built"] == 1
    assert cluster["binaries_shipped"] == CLUSTER_SERVERS - 1
    assert cluster["build_cache_hits"] == 2 * CLUSTER_SERVERS - 1
    assert cluster["build_seconds_saved"] > 0.0


def osem_payload(record: ExperimentRecord) -> dict:
    """The headline counters of an OSEM run as the flat dict committed
    to ``BENCH_osem.json`` — shared by :func:`save_osem_json` and the
    benchdiff regression checker, so the recorded snapshot and the
    comparison can never drift apart."""
    rows = {row["phase"]: row for row in record.rows}
    steady = rows[f"iteration_{OSEM_ITERATIONS}"]
    return {
        "experiment": record.experiment,
        "image_size": OSEM_IMAGE_SIZE,
        "n_subsets": OSEM_SUBSETS,
        "n_events": OSEM_EVENTS,
        "n_iterations": OSEM_ITERATIONS,
        "setup_round_trips": rows["setup"]["round_trips"],
        "setup_round_trips_cache_off": rows["setup_cache_off"]["round_trips"],
        "programs_built": rows["setup"]["programs_built"],
        "iteration_round_trips": steady["round_trips"],
        "iteration_round_trips_push_off": rows["iteration_push_off"]["round_trips"],
        "push_commits": rows["push_counters"]["push_commits"],
        "wasted_pushes": rows["push_counters"]["wasted_pushes"],
        "iteration_batched_commands": steady["batched_commands"],
        "iteration_reply_cache_hits": steady["reply_cache_hits"],
        "iteration_decode_cache_hits": steady["decode_cache_hits"],
        "iteration_hit_ratio": steady["hit_ratio"],
        "min_steady_state_hit_ratio": MIN_STEADY_STATE_HIT_RATIO,
        "cluster_programs_built": rows["cluster_repeat_setup"]["programs_built"],
        "cluster_binaries_shipped": rows["cluster_repeat_setup"]["binaries_shipped"],
        "cluster_build_cache_hits": rows["cluster_repeat_setup"]["build_cache_hits"],
    }


def save_osem_json(record: ExperimentRecord, directory: Optional[str] = None) -> str:
    """Write the headline counters to ``BENCH_osem.json`` (repo root by
    default); returns the path."""
    if directory is None:
        directory = REPO_ROOT
    path = os.path.join(directory, "BENCH_osem.json")
    with open(path, "w") as fh:
        json.dump(osem_payload(record), fh, indent=2)
    return path
