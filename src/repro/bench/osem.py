"""OSEM-iteration perf smoke: the reply cache under a real repeated-arg
workload.

The daemon's :class:`~repro.net.messages.ReplyCache` (and decode cache)
were built for workloads that *re-send byte-identical commands* — the
synthetic unit tests prove the mechanism, this benchmark proves the
payoff on an actual application: list-mode OSEM (the paper's Fig. 5
study) re-binds the same kernel arguments every subset of every
iteration, so from the second iteration on nearly all of its forwarded
command traffic is answered from the caches.

The workload is the Fig. 5 offload scenario shrunk to the tier-1 time
budget: the desktop reconstructs on the remote GPU server's 4 devices
through dOpenCL.  Per iteration we record the client's round trips and
the daemons' aggregate reply/decode-cache hits; the gate asserts the
caches genuinely engage (hits comparable to the sub-commands sent) and
that iterations are steady-state (constant round trips).  Headline
counters land in ``BENCH_osem.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.apps.osem import ListModeOSEM, disk_phantom, generate_events
from repro.bench.harness import REPO_ROOT, ExperimentRecord
from repro.hw.cluster import make_desktop_and_gpu_server
from repro.ocl.constants import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl

#: Reduced Fig. 5 configuration (same call pattern, tier-1 budget).
OSEM_IMAGE_SIZE = 24
OSEM_SUBSETS = 2
OSEM_SAMPLES = 24
OSEM_EVENTS = 2000
OSEM_ITERATIONS = 3

#: Gate: from the second iteration on, at least this fraction of an
#: iteration's batched sub-commands must be answered from the daemon
#: reply cache (in practice it is ~100%: the arg values repeat exactly).
MIN_STEADY_STATE_HIT_RATIO = 0.5


def bench_osem() -> ExperimentRecord:
    """Run the mini Fig. 5 OSEM offload and record per-iteration
    round-trip and cache-hit counters (one row per iteration, plus the
    setup row)."""
    record = ExperimentRecord(
        experiment="bench_osem",
        title="OSEM iterations: daemon reply-cache payoff on repeated kernel args",
        columns=[
            "phase",
            "round_trips",
            "batched_commands",
            "reply_cache_hits",
            "decode_cache_hits",
            "hit_ratio",
            "bytes_sent",
        ],
        notes=(
            f"{OSEM_IMAGE_SIZE}x{OSEM_IMAGE_SIZE} image, {OSEM_SUBSETS} subsets, "
            f"{OSEM_EVENTS} events, {OSEM_ITERATIONS} iterations on the Fig. 5 "
            "desktop->GPU-server offload; acceptance: steady-state iterations "
            f"answer >= {MIN_STEADY_STATE_HIT_RATIO:.0%} of batched sub-commands "
            "from the daemon reply cache, at constant round trips"
        ),
    )
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    api = deployment.api
    driver = deployment.driver
    daemons = deployment.daemons
    gpus = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    osem = ListModeOSEM(
        api, gpus, image_size=OSEM_IMAGE_SIZE, n_subsets=OSEM_SUBSETS, n_samples=OSEM_SAMPLES
    )
    events = generate_events(disk_phantom(OSEM_IMAGE_SIZE), OSEM_EVENTS, seed=7)

    def counters():
        return {
            "round_trips": driver.stats.round_trips,
            "batched_commands": driver.stats.batched_commands,
            "reply_cache_hits": sum(d.gcf.stats.reply_cache_hits for d in daemons),
            "decode_cache_hits": sum(d.gcf.stats.decode_cache_hits for d in daemons),
            "bytes_sent": driver.stats.bytes_sent,
        }

    def add_row(phase: str, before, after) -> None:
        delta = {k: after[k] - before[k] for k in before}
        commands = delta["batched_commands"]
        record.add(
            phase=phase,
            hit_ratio=(delta["reply_cache_hits"] / commands) if commands else 0.0,
            **delta,
        )

    before = counters()
    osem.setup(events)
    add_row("setup", before, counters())
    for i in range(OSEM_ITERATIONS):
        before = counters()
        osem.iterate()
        add_row(f"iteration_{i + 1}", before, counters())
    return record


def assert_osem_record(record: ExperimentRecord) -> None:
    """The OSEM smoke gate: the reply cache pays off outside synthetic
    tests, and iterations are steady-state."""
    iterations = [row for row in record.rows if row["phase"].startswith("iteration")]
    assert len(iterations) == OSEM_ITERATIONS
    steady = iterations[1:]
    for row in steady:
        assert row["batched_commands"] > 0
        assert row["hit_ratio"] >= MIN_STEADY_STATE_HIT_RATIO
    # Steady state is genuinely steady: identical communication per
    # iteration (round trips and cache hits), so the cache is not
    # living off a one-time warm-up effect.
    assert len({row["round_trips"] for row in steady}) == 1
    assert len({row["reply_cache_hits"] for row in steady}) == 1
    # And the cache engaged already during the first iteration (the
    # subsets within one iteration repeat arguments too).
    assert iterations[0]["reply_cache_hits"] > 0


def osem_payload(record: ExperimentRecord) -> dict:
    """The headline counters of an OSEM run as the flat dict committed
    to ``BENCH_osem.json`` — shared by :func:`save_osem_json` and the
    benchdiff regression checker, so the recorded snapshot and the
    comparison can never drift apart."""
    rows = {row["phase"]: row for row in record.rows}
    steady = rows[f"iteration_{OSEM_ITERATIONS}"]
    return {
        "experiment": record.experiment,
        "image_size": OSEM_IMAGE_SIZE,
        "n_subsets": OSEM_SUBSETS,
        "n_events": OSEM_EVENTS,
        "n_iterations": OSEM_ITERATIONS,
        "setup_round_trips": rows["setup"]["round_trips"],
        "iteration_round_trips": steady["round_trips"],
        "iteration_batched_commands": steady["batched_commands"],
        "iteration_reply_cache_hits": steady["reply_cache_hits"],
        "iteration_decode_cache_hits": steady["decode_cache_hits"],
        "iteration_hit_ratio": steady["hit_ratio"],
        "min_steady_state_hit_ratio": MIN_STEADY_STATE_HIT_RATIO,
    }


def save_osem_json(record: ExperimentRecord, directory: Optional[str] = None) -> str:
    """Write the headline counters to ``BENCH_osem.json`` (repo root by
    default); returns the path."""
    if directory is None:
        directory = REPO_ROOT
    path = os.path.join(directory, "BENCH_osem.json")
    with open(path, "w") as fh:
        json.dump(osem_payload(record), fh, indent=2)
    return path
