"""Double-buffered streaming bench: deferred reads overlap readback
with compute (the workload the non-blocking read path exists for).

A Mandelbrot *zoom* renders :data:`STREAM_FRAMES` frames of the same
size, each a tighter viewport around a fixed point.  Two device buffers
alternate (classic double buffering): while the daemon computes frame
``i`` into one buffer, the client reads frame ``i - 1`` back out of the
other.  Three cells:

* ``pipelined`` — ``defer_reads=True`` (the default pipeline): each
  frame's readback is a non-blocking ``clEnqueueReadBuffer`` whose
  deferred fetch rides the next ``clFinish``'s window flush, so the
  transfer overlaps the *next* frame's kernel in virtual time.  The
  steady-state frame period collapses to ``max(C_i, T)`` — and the
  workload is sized compute-bound (``T < C_i`` for every steady
  frame), so the readback vanishes entirely under the kernel.
* ``serial`` — ``defer_reads=False``: the identical program, but the
  ablated driver fetches eagerly at enqueue time.  The client stalls
  for the transfer *before* the flush dispatches the next kernel, so
  every frame pays ``C_i + T`` — the serial sum the broken
  non-blocking read path used to force.
* ``compute_only`` — the same zoom with no readbacks at all: the
  per-frame kernel cost ``C_i`` the other two cells are decomposed
  against (``T`` then falls out of the serial cell as the per-frame
  surplus ``serial_i - C_i``, which must be constant — the frames are
  all the same size).

The zoom deepens per frame, so ``C_i`` *grows* through the sequence —
which is exactly why the gate (:func:`assert_stream_record`) checks the
model per frame rather than against one scalar: for every steady frame,
the pipelined period must sit within :data:`MAX_BOUND_ERROR` of the
``max(C_i, T)`` bound and the serial period within the same band of the
``C_i + T`` sum.  On top of the model fit, the pipelined cell must
spend at most :data:`MAX_PIPELINED_RATIO` of the serial cell's steady
time, every frame of both cells must be bit-identical to the host
reference, and the deferred-read counters must prove the mechanism
(``pipelined`` deferred every frame and resolved each on a flush;
``serial`` deferred none).

The cells pin ``push_transfers=False``: a daemon-initiated predictive
push would satisfy the deferred read without any fetch (that
composition has its own tests and bench), and here it would blur the
single-variable ablation — ``pipelined`` vs ``serial`` must differ in
*when the client fetches*, nothing else.
"""

from __future__ import annotations

import json
import os
import statistics
from typing import Dict, List, Optional

import numpy as np

from repro.apps.mandelbrot import (
    MANDELBROT_KERNEL,
    MandelbrotConfig,
    mandelbrot_reference,
)
from repro.bench.harness import REPO_ROOT, ExperimentRecord
from repro.hw.cluster import make_ib_cpu_cluster
from repro.hw.specs import GIGABIT_ETHERNET
from repro.ocl.constants import CL_MEM_WRITE_ONLY
from repro.testbed import deploy_dopencl

#: Frames in the zoom.  The first marks carry build/first-dispatch
#: noise, so the steady-state checks run over ``periods[2:]`` (see
#: :func:`steady_periods`).
STREAM_FRAMES = 12

#: Frame size and iteration ceiling.  Sized *compute-bound* on the
#: Gigabit testbed: the per-frame readback (~2.2 ms for a 192 KiB
#: frame) stays below the cheapest frame's kernel (~3 ms), so a
#: correctly overlapped pipeline hides the transfer completely while
#: the eager ablation pays it in full — the widest honest gap between
#: the two cells.
STREAM_CONFIG = MandelbrotConfig(width=256, height=192, max_iter=400)

#: Zoom target (a point on the main cardioid's boundary, so frames keep
#: real structure at every depth) and the per-frame viewport shrink.
ZOOM_CENTER = (-0.7436, 0.1318)
ZOOM_FACTOR = 0.80

#: Relative error allowed between a measured steady-state frame period
#: and its model bound (``max(C_i, T)`` pipelined, ``C_i + T`` serial).
MAX_BOUND_ERROR = 0.10

#: Ceiling on pipelined / serial steady-state time.  With the workload
#: compute-bound the true ratio is ``C / (C + T)`` ~ 0.7; this gate
#: requires the overlap to be *substantial*, not merely nonzero.
MAX_PIPELINED_RATIO = 0.85

#: Cell flags.  ``serial`` is the ablation ISSUE 10 demands: the same
#: double-buffered program under the eager-fetch driver.  Pushes are
#: off in every cell (single-variable ablation; see module docstring).
VARIANTS = {
    "pipelined": dict(defer_reads=True, push_transfers=False),
    "serial": dict(defer_reads=False, push_transfers=False),
    "compute_only": dict(defer_reads=True, push_transfers=False),
}


def frame_config(i: int, base: MandelbrotConfig = STREAM_CONFIG) -> MandelbrotConfig:
    """Viewport of zoom frame ``i``: the base frame's span shrunk by
    ``ZOOM_FACTOR ** i`` around :data:`ZOOM_CENTER` (same raster size
    and ``max_iter``, so the readback stays constant while the kernel
    deepens with the zoom)."""
    cx, cy = ZOOM_CENTER
    half_w = (base.x1 - base.x0) / 2.0 * (ZOOM_FACTOR ** i)
    half_h = (base.y1 - base.y0) / 2.0 * (ZOOM_FACTOR ** i)
    return MandelbrotConfig(
        width=base.width,
        height=base.height,
        x0=cx - half_w,
        y0=cy - half_h,
        x1=cx + half_w,
        y1=cy + half_h,
        max_iter=base.max_iter,
    )


def stream_zoom(
    cl,
    n_frames: int = STREAM_FRAMES,
    base: MandelbrotConfig = STREAM_CONFIG,
    readback: bool = True,
) -> Dict[str, object]:
    """Run the double-buffered zoom and return frames plus timing marks.

    Per frame ``i``: launch the kernel for frame ``i`` into buffer
    ``i % 2`` on the compute queue, enqueue a *non-blocking* read of
    frame ``i - 1`` from the other buffer on a dedicated read queue,
    then ``clFinish`` the compute queue.  The finish's window flush
    dispatches kernel ``i`` and (under ``defer_reads``) resolves the
    deferred fetch of frame ``i - 1`` — transfer and compute overlap.
    The read rides its own queue because an in-order queue would
    (correctly) serialise the read behind kernel ``i``; two queues is
    how real OpenCL double-buffers too.

    Returns ``{"frames": [np.ndarray], "marks": [float]}`` where
    ``marks[i]`` is the client's virtual time after frame ``i``'s
    finish — successive differences are the frame periods.
    """
    platform = cl.clGetPlatformIDs()[0]
    device = cl.clGetDeviceIDs(platform)[0]
    ctx = cl.clCreateContext([device])
    compute_q = cl.clCreateCommandQueue(ctx, device)
    read_q = cl.clCreateCommandQueue(ctx, device)
    program = cl.clCreateProgramWithSource(ctx, MANDELBROT_KERNEL)
    cl.clBuildProgram(program)
    frame_bytes = base.height * base.width * 4
    bufs = [
        cl.clCreateBuffer(ctx, CL_MEM_WRITE_ONLY, frame_bytes) for _ in range(2)
    ]
    outs: List[Optional[np.ndarray]] = [None] * n_frames
    read_events = {}
    marks: List[float] = []
    for i in range(n_frames):
        cfg = frame_config(i, base)
        kernel = cl.clCreateKernel(program, "mandelbrot")
        for ai, value in enumerate(
            [
                bufs[i % 2],
                cfg.width,
                cfg.height,
                0,
                1,
                np.float32(cfg.x0),
                np.float32(cfg.y0),
                np.float32(cfg.dx),
                np.float32(cfg.dy),
                cfg.max_iter,
            ]
        ):
            cl.clSetKernelArg(kernel, ai, value)
        cl.clEnqueueNDRangeKernel(compute_q, kernel, (cfg.width, cfg.height))
        if readback and i > 0:
            outs[i - 1], read_events[i - 1] = cl.clEnqueueReadBuffer(
                read_q, bufs[(i - 1) % 2], blocking=False
            )
        cl.clFinish(compute_q)
        marks.append(cl.now)
    if readback:
        outs[n_frames - 1], read_events[n_frames - 1] = cl.clEnqueueReadBuffer(
            read_q, bufs[(n_frames - 1) % 2], blocking=False
        )
        cl.clWaitForEvents([read_events[n_frames - 1]])
        # Earlier frames' fetches already resolved at the finishes; the
        # waits below are bookkeeping (and the correctness assertion
        # that every event did complete).
        cl.clWaitForEvents(list(read_events.values()))
    frames = [
        None if data is None else data.view(np.int32).reshape(base.height, base.width)
        for data in outs
    ]
    return {"frames": frames, "marks": marks}


def frame_periods(marks: List[float]) -> List[float]:
    """Successive frame periods from a run's timing marks."""
    return [b - a for a, b in zip(marks, marks[1:])]


def steady_periods(marks: List[float]) -> List[float]:
    """The steady-state tail of :func:`frame_periods` (the first two
    periods carry build/first-dispatch/pipeline-fill noise)."""
    return frame_periods(marks)[2:]


def bench_stream(
    n_frames: int = STREAM_FRAMES, base: MandelbrotConfig = STREAM_CONFIG
) -> ExperimentRecord:
    """Run the three stream cells and tabulate per-frame periods,
    makespans, and the deferred-read counters."""
    record = ExperimentRecord(
        experiment="bench_stream",
        title="Double-buffered streaming: deferred reads overlap readback with compute",
        columns=[
            "variant",
            "makespan",
            "steady_period",
            "periods",
            "round_trips",
            "bytes_received",
            "deferred_reads",
            "deferred_read_batches",
            "coalesced_reads",
        ],
        notes=(
            f"{base.width}x{base.height}/{base.max_iter}-iter Mandelbrot zoom, "
            f"{n_frames} frames, double-buffered on one Gigabit daemon; "
            f"acceptance: per steady frame, pipelined period within "
            f"{MAX_BOUND_ERROR:.0%} of max(C_i, T) and serial within "
            f"{MAX_BOUND_ERROR:.0%} of C_i + T; pipelined/serial <= "
            f"{MAX_PIPELINED_RATIO:.0%}; frames bit-identical to the host "
            "reference"
        ),
    )
    runs: Dict[str, Dict[str, object]] = {}
    for variant, flags in VARIANTS.items():
        deployment = deploy_dopencl(
            make_ib_cpu_cluster(1, link=GIGABIT_ETHERNET), **flags
        )
        result = stream_zoom(
            deployment.api, n_frames, base, readback=variant != "compute_only"
        )
        runs[variant] = result
        counters = deployment.driver.stats.snapshot()
        marks = result["marks"]
        record.add(
            variant=variant,
            makespan=marks[-1] - marks[0],
            steady_period=statistics.median(steady_periods(marks)),
            periods=frame_periods(marks),
            round_trips=counters["round_trips"],
            bytes_received=counters["bytes_received"],
            deferred_reads=counters["deferred_reads"],
            deferred_read_batches=counters["deferred_read_batches"],
            coalesced_reads=counters["coalesced_reads"],
        )
    for variant in ("pipelined", "serial"):
        for i, frame in enumerate(runs[variant]["frames"]):
            expected = mandelbrot_reference(frame_config(i, base))
            if not (frame == expected).all():
                raise AssertionError(
                    f"{variant} frame {i} diverged from the host reference"
                )
    return record


def assert_stream_record(record: ExperimentRecord) -> None:
    """The stream gate, shared by the tier-1 test and the benchmark
    target so the two cannot drift.

    Decomposes the measured periods against the double-buffering model,
    *per frame* (the zoom deepens, so compute grows through the run):
    ``C_i`` is the compute-only cell's period for frame ``i``, ``T``
    the median per-frame surplus of the serial cell over it.  Every
    steady pipelined period must sit at the ``max(C_i, T)`` bound
    (within :data:`MAX_BOUND_ERROR`), every steady serial period at the
    ``C_i + T`` sum — together they pin both that the overlap happens
    *and* that the ablation flag really removes it.  The counters prove
    the mechanism: the pipelined run deferred one read per frame and
    resolved each on a flush; the serial run deferred nothing.
    """
    rows = {row["variant"]: row for row in record.rows}
    pipelined, serial = rows["pipelined"], rows["serial"]
    compute = rows["compute_only"]
    c = compute["periods"]
    surpluses = [s - ci for s, ci in zip(serial["periods"][2:], c[2:])]
    t = statistics.median(surpluses)
    assert t > 0, "serial cell shows no transfer cost at all"
    steady = range(2, len(c))
    for i in steady:
        bound = max(c[i], t)
        assert abs(pipelined["periods"][i] - bound) <= MAX_BOUND_ERROR * bound, (
            f"pipelined frame {i + 1} period {pipelined['periods'][i]:.6f}s is "
            f"not the max(C_i, T) bound {bound:.6f}s (C_i={c[i]:.6f}s, "
            f"T={t:.6f}s)"
        )
        assert abs(serial["periods"][i] - (c[i] + t)) <= MAX_BOUND_ERROR * (
            c[i] + t
        ), (
            f"serial frame {i + 1} period {serial['periods'][i]:.6f}s is not "
            f"the C_i + T sum {c[i] + t:.6f}s"
        )
    pipe_total = sum(pipelined["periods"][i] for i in steady)
    serial_total = sum(serial["periods"][i] for i in steady)
    assert pipe_total <= MAX_PIPELINED_RATIO * serial_total, (
        f"pipelining saved too little: {pipe_total:.6f}s vs serial "
        f"{serial_total:.6f}s over the steady frames"
    )
    assert pipelined["makespan"] < serial["makespan"]
    # The mechanism, not just the effect: every frame's read deferred
    # and each fetch resolved on a window flush (one batch per frame);
    # the ablation really fetched eagerly (zero deferrals); the
    # compute-only cell never read at all.
    assert pipelined["deferred_reads"] == STREAM_FRAMES
    assert pipelined["deferred_read_batches"] == STREAM_FRAMES
    assert serial["deferred_reads"] == 0
    assert compute["deferred_reads"] == 0
    assert compute["bytes_received"] < serial["bytes_received"]
    # Readback moves the same frame bytes either way — deferral shifts
    # *when* the fetch happens, never how much it moves.  Both cells
    # must have pulled all 12 frames; the slack covers sub-KiB framing
    # differences (notification/response headers), never payload.
    frame_bytes = STREAM_CONFIG.height * STREAM_CONFIG.width * 4
    assert pipelined["bytes_received"] >= STREAM_FRAMES * frame_bytes
    assert serial["bytes_received"] >= STREAM_FRAMES * frame_bytes
    assert abs(pipelined["bytes_received"] - serial["bytes_received"]) < 2048


def stream_payload(record: ExperimentRecord) -> dict:
    """The headline numbers of a stream run as the flat dict committed
    to ``BENCH_stream.json`` — shared by :func:`save_stream_json` and
    the benchdiff regression checker (``repro.tools.benchdiff``)."""
    rows = {row["variant"]: row for row in record.rows}
    c = rows["compute_only"]["periods"]
    t = statistics.median(
        s - ci for s, ci in zip(rows["serial"]["periods"][2:], c[2:])
    )
    steady = range(2, len(c))
    pipe_total = sum(rows["pipelined"]["periods"][i] for i in steady)
    serial_total = sum(rows["serial"]["periods"][i] for i in steady)
    return {
        "experiment": record.experiment,
        "n_frames": STREAM_FRAMES,
        "frame_bytes": STREAM_CONFIG.height * STREAM_CONFIG.width * 4,
        "steady_period_pipelined": rows["pipelined"]["steady_period"],
        "steady_period_serial": rows["serial"]["steady_period"],
        "steady_period_compute_only": rows["compute_only"]["steady_period"],
        "transfer_period": t,
        "makespan_pipelined": rows["pipelined"]["makespan"],
        "makespan_serial": rows["serial"]["makespan"],
        "pipelined_ratio": pipe_total / serial_total,
        "round_trips_pipelined": rows["pipelined"]["round_trips"],
        "round_trips_serial": rows["serial"]["round_trips"],
        "deferred_reads": rows["pipelined"]["deferred_reads"],
        "deferred_read_batches": rows["pipelined"]["deferred_read_batches"],
        "max_bound_error": MAX_BOUND_ERROR,
        "max_pipelined_ratio": MAX_PIPELINED_RATIO,
    }


def save_stream_json(record: ExperimentRecord, directory: Optional[str] = None) -> str:
    """Write the headline numbers to ``BENCH_stream.json`` (repo root by
    default) for the CI driver; returns the path."""
    if directory is None:
        directory = REPO_ROOT
    path = os.path.join(directory, "BENCH_stream.json")
    with open(path, "w") as fh:
        json.dump(stream_payload(record), fh, indent=2)
    return path
