"""Experiment runners: one function per figure of the paper's Section V.

Workload rescaling methodology (documented in EXPERIMENTS.md): each
experiment runs a reduced-size workload but charges paper-size costs:

* ``workload_scale`` multiplies kernel op counts so *compute* time matches
  the paper-size problem;
* the network link is scaled down by the data-size reduction factor so
  *transfer* time keeps the paper's transfer:compute ratio.

Absolute seconds are therefore comparable to the paper's figures; the
claims we verify are the *shapes* (who wins, by what factor, what grows).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.bandwidth import FIG8_SIZES, measure_transfers
from repro.apps.mandelbrot import (
    MandelbrotConfig,
    render_dopencl,
    render_mpi_opencl,
    render_native,
)
from repro.apps.osem import ListModeOSEM, disk_phantom, generate_events
from repro.bench.harness import ExperimentRecord
from repro.hw.cluster import (
    make_desktop_and_gpu_server,
    make_ib_cpu_cluster,
    make_multi_client_gpu_server,
)
from repro.hw.specs import GIGABIT_ETHERNET, INFINIBAND_QDR
from repro.net.iperf import run_iperf
from repro.ocl import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl, native_api_on

# ----------------------------------------------------------------------
# E1 — Fig. 4: Mandelbrot scalability, dOpenCL vs MPI+OpenCL
# ----------------------------------------------------------------------
#: 480x320 at <=200 iterations stands in for 4800x3200 at <=20000:
#: compute is 11500x smaller, the image 100x smaller.
FIG4_CONFIG = MandelbrotConfig(width=480, height=320, max_iter=200)
FIG4_WORKLOAD_SCALE = 11500.0
FIG4_LINK = INFINIBAND_QDR.scaled(1 / 100)


def fig4_mandelbrot(device_counts: Sequence[int] = (2, 4, 8, 16)) -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="fig4",
        title="Mandelbrot runtime, MPI+OpenCL vs dOpenCL (stacked segments, seconds)",
        columns=["devices", "variant", "init", "exec", "transfer", "total"],
        notes=(
            "480x320/200-iter workload rescaled to 4800x3200/20000 "
            f"(workload_scale={FIG4_WORKLOAD_SCALE:g}, link/100)"
        ),
    )
    for n in device_counts:
        cluster = make_ib_cpu_cluster(n, link=FIG4_LINK)
        mpi = render_mpi_opencl(
            cluster.network, cluster.servers, FIG4_CONFIG, workload_scale=FIG4_WORKLOAD_SCALE
        )
        record.add(
            devices=n,
            variant="MPI+OpenCL",
            init=mpi.timings.initialization,
            exec=mpi.timings.execution,
            transfer=mpi.timings.transfer,
            total=mpi.timings.total,
        )
        deployment = deploy_dopencl(
            make_ib_cpu_cluster(n, link=FIG4_LINK), workload_scale=FIG4_WORKLOAD_SCALE
        )
        dcl = render_dopencl(deployment.api, FIG4_CONFIG)
        record.add(
            devices=n,
            variant="dOpenCL",
            init=dcl.timings.initialization,
            exec=dcl.timings.execution,
            transfer=dcl.timings.transfer,
            total=dcl.timings.total,
        )
    return record


# ----------------------------------------------------------------------
# E2 — Fig. 5: list-mode OSEM mean iteration runtime
# ----------------------------------------------------------------------
#: 64^2 image/20k events stands in for the paper's 3D volumes and
#: multi-million-event lists.
OSEM_IMAGE = 64
OSEM_EVENTS = 20000
OSEM_SUBSETS = 2
OSEM_SAMPLES = 64
OSEM_WORKLOAD_SCALE = 4000.0
OSEM_LINK_FACTOR = 1 / 550
OSEM_LINK = GIGABIT_ETHERNET.scaled(OSEM_LINK_FACTOR)


def fig5_osem(n_iterations: int = 2) -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="fig5",
        title="Mean list-mode OSEM iteration runtime (seconds)",
        columns=["setup", "mean_iteration", "configuration"],
        notes=(
            f"64^2/20k-event workload rescaled (workload_scale={OSEM_WORKLOAD_SCALE:g}, "
            f"link x{OSEM_LINK_FACTOR:.4f}); paper: 15.7 s local vs 4.2 s dOpenCL vs ~2 s native"
        ),
    )
    phantom = disk_phantom(OSEM_IMAGE)
    events = generate_events(phantom, OSEM_EVENTS, seed=0)

    def run(cl, devices):
        osem = ListModeOSEM(
            cl, devices, image_size=OSEM_IMAGE, n_subsets=OSEM_SUBSETS, n_samples=OSEM_SAMPLES
        )
        return osem.run(events, n_iterations=n_iterations)

    # (a) Desktop PC, local low-end GPU, plain OpenCL.
    desktop = native_api_on(
        make_desktop_and_gpu_server(link=OSEM_LINK).client, workload_scale=OSEM_WORKLOAD_SCALE
    )
    gpus = desktop.clGetDeviceIDs(desktop.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    local = run(desktop, gpus)
    record.add(
        setup=local.setup_time,
        mean_iteration=local.mean_iteration_time,
        configuration="Desktop PC using OpenCL (NVS 3100M)",
    )

    # (b) Desktop PC offloading to the GPU server through dOpenCL.
    deployment = deploy_dopencl(
        make_desktop_and_gpu_server(link=OSEM_LINK), workload_scale=OSEM_WORKLOAD_SCALE
    )
    api = deployment.api
    remote_gpus = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    offload = run(api, remote_gpus)
    record.add(
        setup=offload.setup_time,
        mean_iteration=offload.mean_iteration_time,
        configuration="Desktop PC using dOpenCL (Tesla S1070 over GigE)",
    )

    # (c) The server itself with its native OpenCL.
    server = native_api_on(
        make_desktop_and_gpu_server(link=OSEM_LINK).servers[0], workload_scale=OSEM_WORKLOAD_SCALE
    )
    server_gpus = server.clGetDeviceIDs(server.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    native = run(server, server_gpus)
    record.add(
        setup=native.setup_time,
        mean_iteration=native.mean_iteration_time,
        configuration="Server using native OpenCL (Tesla S1070)",
    )
    return record


# ----------------------------------------------------------------------
# E3 — Fig. 6: device manager, 1-4 concurrent clients
# ----------------------------------------------------------------------
FIG6_CONFIG = MandelbrotConfig(width=480, height=320, max_iter=200)
FIG6_WORKLOAD_SCALE = 800.0
FIG6_LINK = GIGABIT_ETHERNET.scaled(1 / 100)

GPU_REQUEST_XML = """
<devmngr>gpuserver</devmngr>
<devices>
  <device>
    <attribute name="TYPE">GPU</attribute>
  </device>
</devices>
"""


def fig6_device_manager(client_counts: Sequence[int] = (1, 2, 3, 4)) -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="fig6",
        title="Avg Mandelbrot runtime, concurrent clients sharing one GPU server (seconds)",
        columns=["clients", "devmgr", "init", "exec", "transfer", "total", "max_total", "spread"],
        notes="with DM: one GPU each via leases; without: every client picks device[0]",
    )
    for n in client_counts:
        for with_dm in (True, False):
            cluster = make_multi_client_gpu_server(n, link=FIG6_LINK)
            deployment = deploy_dopencl(
                cluster,
                managed=with_dm,
                devmgr_config_texts=[GPU_REQUEST_XML] * n if with_dm else None,
                workload_scale=FIG6_WORKLOAD_SCALE,
                n_clients=n,
            )
            totals, inits, execs, transfers = [], [], [], []
            for api in deployment.apis:
                result = render_dopencl(api, FIG6_CONFIG, device_type=CL_DEVICE_TYPE_GPU,
                                        n_devices=1)
                totals.append(result.timings.total)
                inits.append(result.timings.initialization)
                execs.append(result.timings.execution)
                transfers.append(result.timings.transfer)
            record.add(
                clients=n,
                devmgr="with" if with_dm else "without",
                init=float(np.mean(inits)),
                exec=float(np.mean(execs)),
                transfer=float(np.mean(transfers)),
                total=float(np.mean(totals)),
                max_total=float(np.max(totals)),
                spread=float(np.max(totals) - np.min(totals)),
            )
    return record


# ----------------------------------------------------------------------
# E4 — Fig. 7: 1024 MB over GigE vs PCIe (real scale, no rescaling)
# ----------------------------------------------------------------------
def fig7_transfer(nbytes: int = 1 << 30) -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="fig7",
        title="Time to transfer 1024 MB to/from a device (seconds)",
        columns=["path", "write", "read"],
        notes="paper: GigE ~50x slower than PCIe for writes, ~4.5x for reads",
    )
    # PCI Express: the application runs on the server itself.
    server_api = native_api_on(make_desktop_and_gpu_server().servers[0])
    (pcie,) = measure_transfers(server_api, [nbytes], device_type=CL_DEVICE_TYPE_GPU)
    record.add(path="PCI Express", write=pcie.write_seconds, read=pcie.read_seconds)
    # Gigabit Ethernet: remote client through dOpenCL.
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    (gige,) = measure_transfers(deployment.api, [nbytes], device_type=CL_DEVICE_TYPE_GPU)
    record.add(path="Gigabit Ethernet", write=gige.write_seconds, read=gige.read_seconds)
    return record


# ----------------------------------------------------------------------
# E5 — Fig. 8: transfer efficiency vs size, against the iperf line
# ----------------------------------------------------------------------
def fig8_efficiency(sizes: Sequence[int] = FIG8_SIZES) -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="fig8",
        title="dOpenCL data-transfer efficiency over GigE (fraction of 125 MB/s)",
        columns=["size_mb", "write_efficiency", "read_efficiency", "iperf_efficiency"],
        notes="paper: iperf line at ~86%; dOpenCL approaches it for large transfers",
    )
    cluster = make_desktop_and_gpu_server()
    iperf = run_iperf(cluster.network, cluster.client, cluster.servers[0])
    iperf_eff = iperf.efficiency(GIGABIT_ETHERNET.bandwidth)
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    samples = measure_transfers(deployment.api, sizes, device_type=CL_DEVICE_TYPE_GPU)
    for sample in samples:
        # The paper plots pure network efficiency; subtract the PCIe leg of
        # the path for the read direction the way the paper's write/read
        # curves still bundle it (we report the raw end-to-end efficiency).
        record.add(
            size_mb=sample.nbytes >> 20,
            write_efficiency=sample.write_efficiency(GIGABIT_ETHERNET.bandwidth),
            read_efficiency=sample.read_efficiency(GIGABIT_ETHERNET.bandwidth),
            iperf_efficiency=iperf_eff,
        )
    return record


# ----------------------------------------------------------------------
# A1 — ablation: MSI (client-mediated) vs MOSI (server-to-server)
# ----------------------------------------------------------------------
SCALE_KERNEL = """
__kernel void scale(__global float *x, const float f, const int n) {
    int i = (int)get_global_id(0);
    if (i < n) x[i] = x[i] * f;
}
"""


def ablation_coherence(rounds: int = 6, nbytes: int = 8 << 20) -> ExperimentRecord:
    """A buffer ping-pongs between kernels on two servers: MSI pays two
    client-mediated hops per move, MOSI one direct hop (Section III-F)."""
    record = ExperimentRecord(
        experiment="ablation_coherence",
        title="Shared-buffer ping-pong between two servers (seconds)",
        columns=["protocol", "total_time", "transfers"],
        notes="Section III-F: server-to-server communication halves the hops",
    )
    n = nbytes // 4
    for protocol in ("msi", "mosi"):
        deployment = deploy_dopencl(make_ib_cpu_cluster(2), coherence_protocol=protocol)
        api = deployment.api
        devices = api.clGetDeviceIDs(api.clGetPlatformIDs()[0])
        ctx = api.clCreateContext(devices)
        queues = [api.clCreateCommandQueue(ctx, d) for d in devices]
        from repro.ocl.constants import CL_MEM_COPY_HOST_PTR, CL_MEM_READ_WRITE

        data = np.ones(n, dtype=np.float32)
        buf = api.clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, data.nbytes, data)
        program = api.clCreateProgramWithSource(ctx, SCALE_KERNEL)
        api.clBuildProgram(program)
        kernel = api.clCreateKernel(program, "scale")
        api.clSetKernelArg(kernel, 0, buf)
        api.clSetKernelArg(kernel, 1, np.float32(1.0000001))
        api.clSetKernelArg(kernel, 2, n)
        t0 = api.now
        for r in range(rounds):
            queue = queues[r % 2]
            api.clEnqueueNDRangeKernel(queue, kernel, (n,))
            api.clFinish(queue)
        total = api.now - t0
        record.add(protocol=protocol.upper(), total_time=total, transfers=rounds)
    return record


# ----------------------------------------------------------------------
# A2 — ablation: device-manager scheduling strategies
# ----------------------------------------------------------------------
def ablation_scheduling() -> ExperimentRecord:
    """Request stream against a heterogeneous pool: best-fit preserves the
    big device for the demanding late request; first-fit burns it early."""
    from repro.core.devmgr import DeviceRequirement, FreeDevice, make_strategy

    record = ExperimentRecord(
        experiment="ablation_scheduling",
        title="Scheduling strategies on a heterogeneous device pool",
        columns=["strategy", "satisfied", "out_of", "balance"],
        notes="requests: 3x small GPU (>=2 CUs), then 1x big GPU (>=30 CUs)",
    )

    def pool():
        return [
            FreeDevice("srvA", 0, {"TYPE": 4, "VENDOR": "NVIDIA", "NAME": "big", "MAX_COMPUTE_UNITS": 30, "GLOBAL_MEM_SIZE": 4 << 30}),
            FreeDevice("srvA", 1, {"TYPE": 4, "VENDOR": "NVIDIA", "NAME": "small", "MAX_COMPUTE_UNITS": 4, "GLOBAL_MEM_SIZE": 1 << 30}),
            FreeDevice("srvB", 0, {"TYPE": 4, "VENDOR": "NVIDIA", "NAME": "small", "MAX_COMPUTE_UNITS": 4, "GLOBAL_MEM_SIZE": 1 << 30}),
            FreeDevice("srvB", 1, {"TYPE": 4, "VENDOR": "NVIDIA", "NAME": "small", "MAX_COMPUTE_UNITS": 4, "GLOBAL_MEM_SIZE": 1 << 30}),
        ]

    requests = [DeviceRequirement(attributes={"TYPE": "GPU", "MAX_COMPUTE_UNITS": "2"})] * 3
    requests.append(DeviceRequirement(attributes={"TYPE": "GPU", "MAX_COMPUTE_UNITS": "30"}))
    for name in ("first_fit", "round_robin", "best_fit"):
        strategy = make_strategy(name)
        free = pool()
        load: Dict[str, int] = {}
        satisfied = 0
        for request in requests:
            pick = strategy.select(free, request, load)
            if pick is not None:
                satisfied += 1
                free.remove(pick)
                load[pick.server_name] = load.get(pick.server_name, 0) + 1
        balance = max(load.values()) - min(load.values()) if len(load) > 1 else max(load.values(), default=0)
        record.add(strategy=name, satisfied=satisfied, out_of=len(requests), balance=balance)
    return record
