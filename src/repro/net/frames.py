"""Wire-time arithmetic for a link technology.

All payloads are carried in MTU-sized frames; a transfer's wire time is the
serialisation time of its frames at the link's *effective* bandwidth
(theoretical bandwidth x protocol efficiency).  Sub-frame payloads still pay
for a minimum frame, which is what bends the small-message end of the
paper's Fig. 8 efficiency curve.
"""

from __future__ import annotations

import math

from repro.hw.specs import LinkSpec

#: Bytes of a minimum Ethernet-class frame on the wire.
MIN_FRAME_PAYLOAD = 64


def frame_count(spec: LinkSpec, nbytes: int) -> int:
    """Number of frames needed for ``nbytes`` of payload."""
    if nbytes <= 0:
        return 1
    return max(1, math.ceil(nbytes / spec.mtu))


def transfer_duration(spec: LinkSpec, nbytes: int) -> float:
    """Serialisation time (no propagation latency) for ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"negative transfer size {nbytes}")
    wire_bytes = max(nbytes, MIN_FRAME_PAYLOAD)
    return wire_bytes / spec.effective_bandwidth


def one_way_time(spec: LinkSpec, nbytes: int) -> float:
    """Latency + serialisation time for a single message."""
    return spec.latency + transfer_duration(spec, nbytes)
