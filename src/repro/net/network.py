"""Host registry and host-to-host transfer timing.

A :class:`Network` is a single switched segment: every attached host gets a
NIC and any host can reach any other.  A transfer charges the sender's
transmit timeline, propagates with the link latency, and charges the
receiver's receive timeline; the returned arrival time is when the last
byte is available at the destination.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.node import Host
from repro.hw.specs import LinkSpec
from repro.net.link import HostUnreachable
from repro.net.nic import NIC


class Network:
    """A switched network segment with uniform link technology."""

    def __init__(self, spec: LinkSpec, name: str = "net") -> None:
        self.spec = spec
        self.name = name
        self.hosts: Dict[str, Host] = {}
        #: Optional :class:`repro.sim.faults.FaultInjector`.  ``None`` (the
        #: default) keeps the happy path byte-for-byte identical: the
        #: injection check is a single attribute test per transfer and no
        #: timeline charge changes.
        self.fault_injector = None

    def add_host(self, host: Host) -> Host:
        """Attach ``host``; creates and installs its NIC."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        host.nic = NIC(host.name, self.spec)
        self.hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        """Look an attached host up by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise HostUnreachable(f"no host {name!r} on network {self.name!r}") from None

    def _nic(self, host: Host) -> NIC:
        if host.nic is None or host.name not in self.hosts:
            raise HostUnreachable(f"host {host.name!r} is not attached to {self.name!r}")
        return host.nic

    def transfer(self, src: Host, dst: Host, ready: float, nbytes: int, tag: object = None) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``; returns arrival time.

        Loopback (src is dst) is charged as a host-internal copy.  When a
        fault injector is installed, every non-loopback transfer consults
        it first — the injector may raise (drop/sever/truncate/reset) or
        return an extra holding delay before the NIC is charged.
        """
        if src is dst:
            return ready + nbytes / 8e9
        if self.fault_injector is not None:
            ready += self.fault_injector.on_transfer(src.name, dst.name, tag, nbytes)
        src_nic, dst_nic = self._nic(src), self._nic(dst)
        tx = src_nic.send(ready, nbytes, tag)
        rx = dst_nic.receive(tx.start + self.spec.latency, nbytes, tag)
        return rx.end

    def one_way_latency(self) -> float:
        """The link's one-way message latency in seconds."""
        return self.spec.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network {self.name!r} ({self.spec.name}) hosts={list(self.hosts)}>"
