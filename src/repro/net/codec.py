"""Tagged binary wire codec.

Messages in the reproduction are *actually serialised* so that the network
cost model charges measured sizes rather than guesses, and so that the
daemon genuinely cannot share Python object state with the client driver
(the property that forces the stub/compound-stub design of the paper).

Supported value types: ``None``, ``bool``, ``int`` (64-bit signed),
``float`` (IEEE double), ``str``, ``bytes``, ``list``/``tuple`` (encoded
identically), ``dict`` with ``str`` keys, and 1-D ``numpy.ndarray`` of a
simple dtype.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08
_TAG_NDARRAY = 0x09


class CodecError(ValueError):
    """Unencodable value or malformed wire data."""


def encode(value: Any) -> bytes:
    """Encode ``value`` into the tagged binary format."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def encoded_size(value: Any) -> int:
    """Size in bytes of ``encode(value)`` (by encoding it)."""
    return len(encode(value))


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, (int, np.integer)):
        out.append(_TAG_INT)
        try:
            out += struct.pack("<q", int(value))
        except struct.error as exc:
            raise CodecError(f"integer out of 64-bit range: {value}") from exc
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT)
        out += struct.pack("<d", float(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_TAG_BYTES)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out)
            _encode_into(item, out)
    elif isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise CodecError(f"only 1-D arrays are encodable, got shape {value.shape}")
        dtype_name = value.dtype.str
        raw = np.ascontiguousarray(value).tobytes()
        out.append(_TAG_NDARRAY)
        _encode_into(dtype_name, out)
        out += struct.pack("<I", len(raw))
        out += raw
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode one value; raises :class:`CodecError` on trailing bytes."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated data: missing tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        _check(data, offset, 8)
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        _check(data, offset, 8)
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == _TAG_STR:
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        return data[offset : offset + n].decode("utf-8"), offset + n
    if tag == _TAG_BYTES:
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        return bytes(data[offset : offset + n]), offset + n
    if tag == _TAG_LIST:
        n, offset = _read_len(data, offset)
        items = []
        for _ in range(n):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        n, offset = _read_len(data, offset)
        result = {}
        for _ in range(n):
            key, offset = _decode_from(data, offset)
            val, offset = _decode_from(data, offset)
            result[key] = val
        return result, offset
    if tag == _TAG_NDARRAY:
        dtype_name, offset = _decode_from(data, offset)
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        arr = np.frombuffer(data[offset : offset + n], dtype=np.dtype(dtype_name)).copy()
        return arr, offset + n
    raise CodecError(f"unknown tag byte 0x{tag:02x} at offset {offset - 1}")


def _read_len(data: bytes, offset: int) -> Tuple[int, int]:
    _check(data, offset, 4)
    return struct.unpack_from("<I", data, offset)[0], offset + 4


def _check(data: bytes, offset: int, need: int) -> None:
    if offset + need > len(data):
        raise CodecError(f"truncated data: need {need} bytes at offset {offset}")
