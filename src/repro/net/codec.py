"""Tagged binary wire codec.

Messages in the reproduction are *actually serialised* so that the network
cost model charges measured sizes rather than guesses, and so that the
daemon genuinely cannot share Python object state with the client driver
(the property that forces the stub/compound-stub design of the paper).

Supported value types: ``None``, ``bool``, ``int`` (64-bit signed),
``float`` (IEEE double), ``str``, ``bytes``, ``list``/``tuple`` (encoded
identically), ``dict`` with ``str`` keys, and 1-D ``numpy.ndarray`` of a
simple dtype.

The codec is zero-copy where it matters:

* :func:`encoded_size` computes the exact wire size *arithmetically*,
  without encoding — O(1) for ``bytes`` and ``ndarray`` payloads, so
  charging a message's network cost never materialises the message;
* :func:`encode` appends ``bytes``/``ndarray`` payloads straight into the
  output buffer through the buffer protocol (no intermediate ``bytes``
  copy via ``tobytes()``);
* :func:`decode` reconstructs arrays with a single ``np.frombuffer`` from
  the wire buffer (one copy total, for ownership) and accepts ``bytes``,
  ``bytearray`` or ``memoryview`` input.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple, Union

import numpy as np

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08
_TAG_NDARRAY = 0x09

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

Buffer = Union[bytes, bytearray, memoryview]


class CodecError(ValueError):
    """Unencodable value or malformed wire data."""


def encode(value: Any) -> bytes:
    """Encode ``value`` into the tagged binary format."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def encoded_size(value: Any) -> int:
    """Exact size in bytes of ``encode(value)``, computed arithmetically.

    Never materialises the encoding: O(1) for ``bytes``-like and
    ``ndarray`` payloads, O(n) in the number of *elements* (not payload
    bytes) for containers.  Raises :class:`CodecError` for exactly the
    values :func:`encode` rejects, so it can be used as a cheap
    validity pre-check.
    """
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, (int, np.integer)):
        if not _INT64_MIN <= int(value) <= _INT64_MAX:
            raise CodecError(f"integer out of 64-bit range: {value}")
        return 9
    if isinstance(value, (float, np.floating)):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, memoryview):
        return 5 + value.nbytes
    if isinstance(value, (list, tuple)):
        return 5 + sum(encoded_size(item) for item in value)
    if isinstance(value, dict):
        total = 5
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            total += encoded_size(key) + encoded_size(item)
        return total
    if isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise CodecError(f"only 1-D arrays are encodable, got shape {value.shape}")
        if value.dtype.hasobject:
            raise CodecError("object-dtype arrays are not encodable")
        return 1 + encoded_size(value.dtype.str) + 4 + value.nbytes
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, (int, np.integer)):
        out.append(_TAG_INT)
        try:
            out += struct.pack("<q", int(value))
        except struct.error as exc:
            raise CodecError(f"integer out of 64-bit range: {value}") from exc
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT)
        out += struct.pack("<d", float(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        # The buffer-protocol append below needs C-contiguity (plain
        # .contiguous is also true for Fortran layouts).
        if isinstance(value, memoryview) and not value.c_contiguous:
            value = bytes(value)
        nbytes = value.nbytes if isinstance(value, memoryview) else len(value)
        out.append(_TAG_BYTES)
        out += struct.pack("<I", nbytes)
        out += value  # buffer-protocol append: no intermediate copy
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out)
            _encode_into(item, out)
    elif isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise CodecError(f"only 1-D arrays are encodable, got shape {value.shape}")
        if value.dtype.hasobject:
            raise CodecError("object-dtype arrays are not encodable")
        arr = np.ascontiguousarray(value)
        out.append(_TAG_NDARRAY)
        _encode_into(arr.dtype.str, out)
        out += struct.pack("<I", arr.nbytes)
        out += memoryview(arr).cast("B")  # raw element bytes, no tobytes() copy
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def decode(data: Buffer) -> Any:
    """Decode one value; raises :class:`CodecError` on trailing bytes."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode_from(data: Buffer, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated data: missing tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        _check(data, offset, 8)
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        _check(data, offset, 8)
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == _TAG_STR:
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        return str(memoryview(data)[offset : offset + n], "utf-8"), offset + n
    if tag == _TAG_BYTES:
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        return bytes(memoryview(data)[offset : offset + n]), offset + n
    if tag == _TAG_LIST:
        n, offset = _read_len(data, offset)
        items = []
        for _ in range(n):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        n, offset = _read_len(data, offset)
        result = {}
        for _ in range(n):
            key, offset = _decode_from(data, offset)
            val, offset = _decode_from(data, offset)
            result[key] = val
        return result, offset
    if tag == _TAG_NDARRAY:
        dtype_name, offset = _decode_from(data, offset)
        n, offset = _read_len(data, offset)
        _check(data, offset, n)
        try:
            dtype = np.dtype(dtype_name)
        except TypeError as exc:
            raise CodecError(f"bad dtype {dtype_name!r}") from exc
        if dtype.hasobject:
            raise CodecError(f"object dtype {dtype_name!r} is not wire-decodable")
        if dtype.itemsize == 0 or n % dtype.itemsize:
            raise CodecError(f"{n} payload bytes do not fit dtype {dtype_name!r}")
        # Single copy: frombuffer views the wire buffer, .copy() gives the
        # caller an owned, writable array.
        arr = np.frombuffer(data, dtype=dtype, count=n // dtype.itemsize, offset=offset).copy()
        return arr, offset + n
    raise CodecError(f"unknown tag byte 0x{tag:02x} at offset {offset - 1}")


def _read_len(data: Buffer, offset: int) -> Tuple[int, int]:
    _check(data, offset, 4)
    return struct.unpack_from("<I", data, offset)[0], offset + 4


def _check(data: Buffer, offset: int, need: int) -> None:
    if offset + need > len(data):
        raise CodecError(f"truncated data: need {need} bytes at offset {offset}")
