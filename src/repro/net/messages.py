"""Message base classes, the wire-type registry, and the batch envelope.

A message class declares its payload fields as a dataclass; the registry
assigns each class a stable wire name.  ``to_wire`` produces real bytes via
:mod:`repro.net.codec` — the byte count (plus the protocol header) is what
the network model charges for message-based communication.

``wire_size`` is computed arithmetically via :func:`repro.net.codec.
encoded_size` — charging a message's cost never materialises its
encoding (the zero-copy property; ``wire_size == len(to_wire()) +
MESSAGE_HEADER_BYTES`` is guaranteed by the codec's size arithmetic).

:class:`CommandBatch` / :class:`CommandBatchResponse` are the transport
envelope for *asynchronous batched call forwarding*: a window of
enqueue-class commands coalesced into one message paying one protocol
header and one network round trip, instead of one per command.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, List, Type, TypeVar

from repro.net.codec import CodecError, decode, encode, encoded_size

#: Fixed per-message protocol overhead (framing, transport headers, GCF
#: message envelope) in bytes.
MESSAGE_HEADER_BYTES = 64

_REGISTRY: Dict[str, Type["Message"]] = {}

M = TypeVar("M", bound="Message")


def message_type(cls: Type[M]) -> Type[M]:
    """Class decorator: make ``cls`` a dataclass and register its wire name."""
    cls = dataclasses.dataclass(cls)
    wire_name = cls.__name__
    if wire_name in _REGISTRY and _REGISTRY[wire_name] is not cls:
        raise ValueError(f"duplicate message type {wire_name!r}")
    _REGISTRY[wire_name] = cls
    return cls


def registered_types() -> Dict[str, Type["Message"]]:
    return dict(_REGISTRY)


class Message:
    """Base class for all wire messages."""

    def to_payload(self) -> Dict[str, Any]:
        if not dataclasses.is_dataclass(self):
            raise TypeError(f"{type(self).__name__} is not a @message_type dataclass")
        return dataclasses.asdict(self)

    def to_wire(self) -> bytes:
        return encode([type(self).__name__, self.to_payload()])

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including the protocol header.

        Computed without encoding the message (see module docstring)."""
        return encoded_size([type(self).__name__, self.to_payload()]) + MESSAGE_HEADER_BYTES

    @staticmethod
    def from_wire(data: bytes) -> "Message":
        decoded = decode(data)
        if not (isinstance(decoded, list) and len(decoded) == 2):
            raise CodecError("malformed message envelope")
        wire_name, payload = decoded
        cls = _REGISTRY.get(wire_name)
        if cls is None:
            raise CodecError(f"unknown message type {wire_name!r}")
        return cls(**payload)


class Request(Message):
    """A message that expects a :class:`Response`."""


class Response(Message):
    """Reply to a :class:`Request`."""


class Notification(Message):
    """One-way asynchronous message (e.g. an event status update)."""


@message_type
class CommandBatch(Request):
    """A coalesced send window of forwarded commands.

    ``commands`` holds each deferred command's full wire encoding (its
    ``to_wire()`` bytes), in client program order.  The whole batch pays
    one :data:`MESSAGE_HEADER_BYTES` header and one network round trip;
    the receiver decodes each sub-command once and dispatches it to the
    handler registered for its type, in order.
    """

    commands: List[bytes]


@message_type
class CommandBatchResponse(Response):
    """Per-command responses of a :class:`CommandBatch`, in batch order.

    ``results[i]`` is the wire encoding of the response the ``i``-th
    sub-command's handler returned; the sender decodes them and settles
    each deferred command's outcome (error checks, response callbacks)
    from the single reply.
    """

    results: List[bytes]
    error: int = 0
    detail: str = ""
