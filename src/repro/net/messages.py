"""Message base classes, the wire-type registry, and the batch envelope.

A message class declares its payload fields as a dataclass; the registry
assigns each class a stable wire name.  ``to_wire`` produces real bytes via
:mod:`repro.net.codec` — the byte count (plus the protocol header) is what
the network model charges for message-based communication.

``wire_size`` is computed arithmetically via :func:`repro.net.codec.
encoded_size` — charging a message's cost never materialises its
encoding (the zero-copy property; ``wire_size == len(to_wire()) +
MESSAGE_HEADER_BYTES`` is guaranteed by the codec's size arithmetic).

:class:`CommandBatch` / :class:`CommandBatchResponse` are the transport
envelope for *asynchronous batched call forwarding*: a window of
enqueue-class commands coalesced into one message paying one protocol
header and one network round trip, instead of one per command.

Encoding caches
---------------

Messages submitted to the forwarding pipeline are *frozen by convention*:
once a request has been appended to a send window (or dispatched), its
payload fields must not be mutated.  That contract makes two caches safe:

* :meth:`Message.cached_wire` memoises ``to_wire()`` per instance, so a
  command replicated into N send windows (the same instance, deduplicated
  by the client driver's ``fanout_deferred``) is encoded once and the
  bytes are reused for every window;
* :class:`WireDecodeCache` is a bounded LRU from raw wire bytes to the
  decoded message, so byte-identical commands or replies (e.g. the
  ubiquitous success ``Ack``) are decoded once per process.  Decoded
  instances are shared — callers must treat them as read-only, which
  both the daemon handlers and the client reply-settling path do.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Dict, List, Tuple, Type, TypeVar

from repro.net.codec import CodecError, decode, encode, encoded_size

#: Fixed per-message protocol overhead (framing, transport headers, GCF
#: message envelope) in bytes.
MESSAGE_HEADER_BYTES = 64

_REGISTRY: Dict[str, Type["Message"]] = {}

M = TypeVar("M", bound="Message")


def message_type(cls: Type[M]) -> Type[M]:
    """Class decorator: make ``cls`` a dataclass and register its wire name."""
    cls = dataclasses.dataclass(cls)
    wire_name = cls.__name__
    if wire_name in _REGISTRY and _REGISTRY[wire_name] is not cls:
        raise ValueError(f"duplicate message type {wire_name!r}")
    _REGISTRY[wire_name] = cls
    return cls


def registered_types() -> Dict[str, Type["Message"]]:
    """A copy of the wire-name -> message-class registry."""
    return dict(_REGISTRY)


class Message:
    """Base class for all wire messages."""

    def to_payload(self) -> Dict[str, Any]:
        """The message's payload fields as a plain (encodable) dict."""
        if not dataclasses.is_dataclass(self):
            raise TypeError(f"{type(self).__name__} is not a @message_type dataclass")
        return dataclasses.asdict(self)

    def to_wire(self) -> bytes:
        """Encode the message into its wire bytes (uncached)."""
        return encode([type(self).__name__, self.to_payload()])

    def cached_wire(self) -> bytes:
        """``to_wire()`` memoised on the instance.

        Valid only under the frozen-by-convention contract (module
        docstring): the payload must not change after the first call.
        The forwarding pipeline uses this so a command instance shared
        across N send windows pays one encoding, not N.
        """
        wire = self.__dict__.get("_cached_wire")
        if wire is None:
            wire = self.to_wire()
            self.__dict__["_cached_wire"] = wire
        return wire

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including the protocol header.

        Computed without encoding the message (see module docstring)."""
        return encoded_size([type(self).__name__, self.to_payload()]) + MESSAGE_HEADER_BYTES

    @staticmethod
    def from_wire(data: bytes) -> "Message":
        """Decode wire bytes back into a fresh message instance."""
        decoded = decode(data)
        if not (isinstance(decoded, list) and len(decoded) == 2):
            raise CodecError("malformed message envelope")
        wire_name, payload = decoded
        cls = _REGISTRY.get(wire_name)
        if cls is None:
            raise CodecError(f"unknown message type {wire_name!r}")
        return cls(**payload)


class WireDecodeCache:
    """Bounded LRU mapping raw wire bytes -> decoded :class:`Message`.

    Shared-instance semantics: a hit returns the *same* message object as
    the first decode, so callers must not mutate what they get back (see
    module docstring).  ``hits`` counts reused decodes — the quantity the
    daemon reply cache and the client reply-settling path report through
    ``NetStats.decode_cache_hits``.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self._entries: "OrderedDict[bytes, Message]" = OrderedDict()

    def decode(self, raw: bytes) -> "Message":
        """Decode ``raw``, reusing (and refreshing) a cached instance."""
        key = bytes(raw)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        msg = Message.from_wire(raw)
        if self.maxsize > 0:
            self._entries[key] = msg
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return msg

    def __len__(self) -> int:
        return len(self._entries)


class ReplyCache:
    """Bounded LRU keyed by a request's wire bytes, storing the response
    it produced together with that response's encoding.

    The daemon's batch dispatcher *always* executes the handler (handlers
    have side effects — the cache must never skip them); the cache only
    removes the cost of re-encoding an identical reply.  On replay, if
    the fresh response compares equal to the cached one, the cached wire
    bytes are reused and ``hits`` is bumped (reported through
    ``NetStats.reply_cache_hits``); otherwise the entry is refreshed.
    In steady state almost every deferred command answers the same
    success ``Ack``, so hit rates are high.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self._entries: "OrderedDict[bytes, Tuple[Message, bytes]]" = OrderedDict()

    def encode(self, request_wire: bytes, response: "Message") -> bytes:
        """Return ``response``'s wire bytes, reusing the cached encoding
        when this request digest previously produced an equal response."""
        key = bytes(request_wire)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            cached_response, cached_wire = cached
            try:
                same = cached_response == response
            except Exception:  # unhashable/array-valued payloads: no reuse
                same = False
            if same:
                self.hits += 1
                return cached_wire
        wire = response.to_wire()
        if self.maxsize > 0:
            self._entries[key] = (response, wire)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return wire

    def __len__(self) -> int:
        return len(self._entries)


class Request(Message):
    """A message that expects a :class:`Response`."""


class Response(Message):
    """Reply to a :class:`Request`."""


class Notification(Message):
    """One-way asynchronous message (e.g. an event status update)."""


@message_type
class CommandBatch(Request):
    """A coalesced send window of forwarded commands.

    ``commands`` holds each deferred command's full wire encoding (its
    ``to_wire()`` bytes), in client program order.  The whole batch pays
    one :data:`MESSAGE_HEADER_BYTES` header and one network round trip;
    the receiver decodes each sub-command once and dispatches it to the
    handler registered for its type, in order.

    ``epoch``/``seq`` form the batch's *replay identity* (together with
    the sending process name): when the client dispatches with a retry
    policy it stamps each batch with its connection epoch and a
    monotonically increasing sequence number, and the daemon's dispatch
    dedupe re-answers an already-executed (epoch, seq) from its cached
    reply instead of re-running the handlers — at-least-once on the wire,
    exactly-once in effect.  ``seq < 0`` (the default) means "no replay
    identity": the two fields are omitted from the payload entirely so
    the happy-path wire encoding is byte-identical to the pre-resilience
    format.
    """

    commands: List[bytes]
    epoch: int = 0
    seq: int = -1

    def to_payload(self) -> Dict[str, Any]:
        """Payload dict; drops the replay identity when it is unset."""
        payload = super().to_payload()
        if self.seq < 0:
            del payload["epoch"]
            del payload["seq"]
        return payload


@message_type
class CommandBatchResponse(Response):
    """Per-command responses of a :class:`CommandBatch`, in batch order.

    ``results[i]`` is the wire encoding of the response answering the
    ``i``-th sub-command — whether its handler ran, the dispatch guard
    short-circuited it (a command poisoned by a failed creation), or it
    could not be dispatched at all.  Failures are therefore always
    reported *positionally*: the sender decodes the slots and settles
    each deferred command's outcome (error checks, response callbacks)
    from the single reply, attributing any error to the exact call that
    caused it.
    """

    results: List[bytes]
    error: int = 0
    detail: str = ""
