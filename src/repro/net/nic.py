"""Per-host network interface with full-duplex timelines.

The transmit and receive sides are independent resources (full duplex);
either side serialises its own transfers.  Four clients writing to one
server all queue on the server NIC's receive timeline — the contention that
grows the data-transfer segment in the paper's Fig. 6.
"""

from __future__ import annotations

from repro.hw.specs import LinkSpec
from repro.net.frames import transfer_duration
from repro.sim.timeline import Interval, Timeline


class NIC:
    """A host's attachment to the network."""

    def __init__(self, host_name: str, spec: LinkSpec) -> None:
        self.host_name = host_name
        self.spec = spec
        self.tx = Timeline(name=f"{host_name}.nic.tx")
        self.rx = Timeline(name=f"{host_name}.nic.rx")

    def send(self, ready: float, nbytes: int, tag: object = None) -> Interval:
        """Charge the transmit side; returns the busy interval."""
        return self.tx.allocate(ready, transfer_duration(self.spec, nbytes), tag)

    def receive(self, ready: float, nbytes: int, tag: object = None) -> Interval:
        """Charge the receive side; returns the busy interval."""
        return self.rx.allocate(ready, transfer_duration(self.spec, nbytes), tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NIC {self.host_name!r} {self.spec.name}>"
