"""An iperf-like bandwidth measurement tool for the simulated network.

The paper (Section V-D) uses iperf to establish the *effective* bandwidth
of its Gigabit Ethernet (~106 MB/s, 85% of the theoretical 125 MB/s) as the
reference line in Fig. 8.  ``run_iperf`` measures the same quantity on the
simulated substrate: a long unidirectional bulk transfer between two hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.node import Host
from repro.net.network import Network


@dataclass(frozen=True)
class IperfResult:
    """Outcome of one iperf-style bulk measurement."""

    nbytes: int
    seconds: float

    @property
    def bandwidth(self) -> float:
        """Measured bytes/second."""
        return self.nbytes / self.seconds

    def efficiency(self, theoretical_bandwidth: float) -> float:
        """Fraction of the theoretical link rate achieved."""
        return self.bandwidth / theoretical_bandwidth


def run_iperf(
    network: Network,
    client: Host,
    server: Host,
    nbytes: int = 1 << 30,
    start: float = 0.0,
) -> IperfResult:
    """Measure effective bandwidth from ``client`` to ``server``.

    Uses dedicated NIC time (like a real iperf run on an idle network):
    measured duration is arrival minus start, including one connection
    setup round trip.
    """
    # TCP connection setup: one round trip.
    t = start + 2 * network.spec.latency
    arrival = network.transfer(client, server, t, nbytes, tag="iperf")
    return IperfResult(nbytes=nbytes, seconds=arrival - start)
