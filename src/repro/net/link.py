"""Network-layer errors."""


class NetworkError(RuntimeError):
    """Base class for simulated network failures (unknown host, send on a
    disconnected endpoint, ...)."""


class HostUnreachable(NetworkError):
    """The destination host is not attached to the network."""


class ConnectionRefused(NetworkError):
    """The destination process rejected the connection (e.g. an invalid
    authentication ID in managed mode)."""
