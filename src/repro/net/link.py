"""Network-layer errors.

All of them derive from :class:`NetworkError`, which itself derives from
:class:`repro.sim.errors.CommunicationError` — the shared base that also
covers :class:`repro.sim.channel.ChannelClosed`.  Client resilience code
catches :class:`CommunicationError` to mean "the message did not make it"
regardless of which layer noticed; see
:mod:`repro.core.client.resilience` for the mapping to OpenCL error codes.
"""

from repro.sim.errors import CommunicationError


class NetworkError(CommunicationError):
    """Base class for simulated network failures (unknown host, send on a
    disconnected endpoint, ...)."""


class HostUnreachable(NetworkError):
    """The destination host is not attached to the network."""


class ConnectionRefused(NetworkError):
    """The destination process rejected the connection (e.g. an invalid
    authentication ID in managed mode)."""


class MessageDropped(NetworkError):
    """An injected fault discarded this message in flight.

    The sender observes a timeout (the retry machinery charges the
    configured timeout penalty); the receiver never sees the bytes.
    """


class LinkSevered(NetworkError):
    """The link between two specific hosts is (possibly temporarily) down.

    Unlike :class:`MessageDropped` this is sticky: every transfer between
    the severed pair fails until the fault plan heals the link.
    """


class StreamTruncated(NetworkError):
    """An in-flight bulk payload was cut short.

    The receiver must treat the partial data as garbage; the sender retries
    the whole stream (init + payload + sink) from the top.
    """


class ConnectionReset(NetworkError):
    """The remote process is gone (crashed daemon) — not a transient loss.

    Retrying is pointless: the client declares the daemon dead immediately
    instead of spending its retry budget.
    """
