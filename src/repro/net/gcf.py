"""A Generic Communication Framework (GCF) look-alike.

The paper implements dOpenCL's communication on GCF, a part of the
Real-Time Framework [15], [16]: *"client and servers are represented by
process objects; processes exchange messages ... Additionally, we
implemented bidirectional data streams ... to exchange large quantities of
binary data"*.

:class:`GCFProcess` is such a process object.  It lives on a
:class:`~repro.hw.node.Host`, owns a CPU timeline for request decoding and
dispatch, and supports the paper's two communication patterns:

* **message-based** — :meth:`GCFProcess.request` (synchronous
  request/response round trip), :meth:`GCFProcess.request_batch` (one
  round trip carrying a whole send window of commands) and
  :meth:`GCFProcess.notify` (asynchronous one-way notification);
* **stream-based** — :meth:`GCFProcess.stream` (an initialising
  request/response exchange followed by the raw bulk payload, exactly the
  sequence described in Section III-B).

Messages are really serialised; their measured byte counts drive the
network cost model.  Every process keeps a :class:`NetStats` tally of the
round trips and wire bytes it initiated — the counters behind the
batching benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Type

from repro.hw.node import Host
from repro.net.codec import CodecError
from repro.net.link import ConnectionRefused, NetworkError
from repro.net.messages import (
    CommandBatch,
    CommandBatchResponse,
    Message,
    Notification,
    ReplyCache,
    Request,
    Response,
    WireDecodeCache,
)
from repro.net.network import Network
from repro.net.streams import StreamResult
from repro.sim.timeline import Timeline

#: A request handler receives ``(message, t_start, sender)`` and returns
#: ``(response_message, t_done)``.
RequestHandler = Callable[[Message, float, "GCFProcess"], Tuple[Response, float]]
#: A notification handler receives ``(message, arrival_time, sender)``.
NotificationHandler = Callable[[Message, float, "GCFProcess"], None]

#: Default bound on the per-process notification log.  The log is a
#: debugging/test aid; unbounded growth made long benchmark runs
#: accumulate memory linearly with event count.
NOTIFICATION_LOG_LIMIT = 256


class NetStats:
    """Per-process tally of initiated communication.

    Counter meanings (each is a monotonically increasing int):

    ``requests``
        Synchronous single-message request/response exchanges this
        process initiated (``GCFProcess.request``).  One request = one
        network round trip.
    ``batches``
        :class:`CommandBatch` envelopes this process dispatched
        (``GCFProcess.request_batch``).  A batch of N commands is *one*
        round trip — the quantity the forwarding pipeline minimises.
    ``batched_commands``
        Total sub-commands carried inside those batches; the coalescing
        ratio is ``batched_commands / batches``.
    ``batched_commands_received``
        Sub-commands this process *dispatched* as a batch receiver
        (``install_batch_dispatch``); every received sub-command is
        counted exactly once — decoded, served from a cache, poisoned
        or undispatchable alike — so the cache counters below can be
        audited against it (see ``tests/net/test_wire_caches.py``).
    ``poisoned_commands``
        Batched sub-commands short-circuited by the dispatch guard
        (e.g. a command depending on a failed creation's provisional
        ID): counted in ``batched_commands_received`` but never run.
    ``notifications``
        One-way asynchronous messages sent (``GCFProcess.notify``); they
        cost bytes but no round trip.
    ``streams`` / ``bulk_sends`` / ``bulk_fetches``
        Stream-based bulk transfers: raw streams, uploads (init
        request + pushed payload) and downloads (request + pulled
        payload).  A bulk *fetch* blocks on the reply, so it counts as a
        round trip; a bulk *send*'s init request is already counted in
        ``requests``.
    ``bytes_sent`` / ``bytes_received``
        Wire bytes (message encodings incl. protocol headers, plus raw
        bulk payloads) this process put on / took off the network.
    ``encode_cache_hits``
        Command encodings reused from :meth:`Message.cached_wire` when
        assembling batches — a command replicated to N daemons is
        encoded once and hits this counter N-1 times.
    ``decode_cache_hits``
        Wire decodings answered from the process's
        :class:`~repro.net.messages.WireDecodeCache`: on a daemon these
        are byte-identical sub-commands decoded once; on a client,
        byte-identical batched replies (typically the success ``Ack``).
    ``reply_cache_hits``
        Daemon-side reply encodings reused from the
        :class:`~repro.net.messages.ReplyCache` (the handler still ran;
        only the re-encoding was skipped).
    ``relays_deferred`` / ``relays_suppressed``
        Client-side event-consistency traffic accounting: completion
        relays that joined a send window instead of round-tripping, and
        relays skipped entirely because the event has no user-event
        replicas anywhere.
    ``coalesced_uploads`` / ``coalesced_upload_sections``
        Coherence uploads merged into single bulk streams, and how many
        per-buffer sections those merged streams carried.
    ``coalesced_downloads`` / ``coalesced_download_sections``
        Coherence downloads merged into single bulk fetches (one
        request round trip streaming several buffers back), and how
        many per-buffer sections those merged fetches carried.
    ``coalesced_reads`` / ``coalesced_read_sections``
        Blocking-``clEnqueueReadBuffer`` result gathers fused per
        source daemon: a blocking read that must download its buffer
        gang-revalidates the sibling dirty buffers stranded on the
        same daemon in one ``CoalescedBufferDownload`` fetch, so
        back-to-back result reads cost one round trip per daemon.
        Counted per fused group / per section (the group's fetch also
        counts in ``coalesced_downloads``).
    ``flush_barriers``
        ``clFlush`` submission barriers recorded in send windows: the
        flush no longer force-dispatches the window — the FlushRequest
        rides the batch and the barrier constrains prefix flushing
        (``SendWindow.barrier_floor``) so nothing overtakes flushed
        commands.
    ``coalesced_peer_transfers`` / ``coalesced_peer_transfer_sections``
        MOSI server-to-server exchanges batched onto one
        ``BufferPeerTransferBatch`` round trip (same (src, dst) daemon
        pair), and the per-buffer sections those batches carried.
    ``prefix_flushes``
        Targeted sync points that dispatched only a window *prefix*
        (up to the awaited handle's producer), leaving causally
        unrelated commands after it windowed.
    ``dropped_event_statuses``
        Daemon-side: early event statuses dropped because the sending
        client's status-before-create buffer was full (the bounded
        overflow policy — an error reply on the request path, a counted
        drop on the broadcast-callback path).
    ``timeouts``
        Client-side: transport attempts that failed with a
        :class:`~repro.sim.errors.CommunicationError` and were charged
        the retry policy's timeout penalty (see
        :mod:`repro.core.client.resilience`).
    ``retries``
        Client-side: re-attempts actually dispatched after a timeout
        (``retries <= timeouts``; the last timeout of an exhausted
        budget has no retry).
    ``replayed_batches``
        Client-side: :class:`CommandBatch` envelopes re-sent with the
        same (epoch, seq) replay identity after a lost attempt.
    ``deduped_batches``
        Daemon-side: replayed batches answered from the dispatch
        dedupe cache *without* re-running any handler — the
        exactly-once half of at-least-once delivery.  Structurally,
        the sum of ``deduped_batches`` over daemons never exceeds the
        sum of ``replayed_batches`` over clients.
    ``evicted_replicas``
        Client-side: coherence-directory replicas discarded because
        the daemon holding them was declared dead.
    ``dead_daemons``
        Client-side: daemons this process declared dead after
        exhausting the retry budget (or on a connection reset).
    ``lost_notifications``
        Daemon-side: one-way event notifications abandoned after the
        bounded notification retry gave up — the client will observe
        the event state at its next synchronous exchange instead.
    ``refused_connections``
        Daemon-side: connection attempts turned away by admission
        control (the per-daemon client cap, see
        :mod:`repro.core.daemon.admission`) — counted on the *refusing*
        process, distinct from managed-mode auth failures.
    ``quota_rejections``
        Daemon-side: creation commands rejected because the sending
        client hit its per-client registry-object quota
        (``CL_OUT_OF_RESOURCES``); under deferred creations the
        rejected provisional ID poisons exactly like any other failed
        creation, so the backpressure composes with the handle-promise
        machinery instead of bypassing it.

    ``programs_built``
        Daemon-side: program builds that actually invoked the compiler
        (``repro.clc.compile_program``) and charged ``build_duration``
        on this daemon's timeline — successful *and* failed compiles
        alike.  With the build cache on, every build-class request
        (``BuildProgramRequest`` or ``BuildProgramCachedRequest``)
        resolves to exactly one of ``programs_built``,
        ``build_cache_hits`` or ``negative_build_hits``, so the
        triple's sum equals the build requests handled — and is
        invariant under the ``program_cache`` ablation flag.
    ``build_cache_hits``
        Daemon-side: builds answered from the content-addressed build
        cache (adopting a cached ``CompiledProgram`` — compiled here
        earlier, by any tenant, or installed as a shipped cluster
        binary) without invoking the compiler or charging
        ``build_duration``.
    ``negative_build_hits``
        Daemon-side: builds answered from a *negative* cache entry —
        the same ``CL_BUILD_PROGRAM_FAILURE`` and bit-identical build
        log as the original failed compile, replayed without running
        the compiler.
    ``binaries_shipped``
        Daemon-side: serialized program binaries (and negative
        entries) this daemon pushed into sibling daemons' build caches
        after resolving a build miss — the cluster-registry traffic
        that makes steady-state compiles one per unique
        ``(source digest, options)`` per cluster.
    ``build_seconds_saved``
        Daemon-side: the cumulative ``build_duration`` the cache
        refunded (a float — the one non-integer counter): incremented
        by the skipped compile's duration on every ``build_cache_hits``
        / ``negative_build_hits`` event.
    ``cache_entries_rehydrated``
        Daemon-side: build-cache entries re-installed from a sibling
        daemon's cache during ``Daemon.restart()`` — the crashed
        daemon pulls the cluster registry back over the s2s mesh
        instead of recompiling.

    ``speculative_pushes``
        Client-side: push hints the transfer planner attached to
        kernel launches (one per writable buffer argument with a
        stable producer->consumer edge).  Zero under
        ``push_transfers=False``.
    ``daemon_pushes`` / ``push_bytes``
        Daemon-side: speculative replica pushes this daemon executed
        at kernel completion (client-destined payloads riding the
        completion notification, or direct s2s pushes to a peer
        daemon), and the payload bytes they carried.  A push whose
        transfer failed (severed link) is not counted — the consumer
        demand-fetches instead.  Without faults, the sum over daemons
        equals the clients' ``speculative_pushes``.
    ``push_commits``
        Client-side: staged pushes whose epoch matched the buffer's
        current epoch at a sync point and therefore replaced a demand
        transfer (a client download served from staged bytes, or a
        deferred :class:`~repro.core.protocol.messages.PushCommit`
        replacing a peer-transfer round trip).
    ``wasted_pushes``
        Client-side: staged pushes / commit records discarded without
        being consumed — a newer write bumped the buffer's epoch, or
        the target daemon was declared dead.  Structurally
        ``push_commits + wasted_pushes <= sum(daemon_pushes) <=
        speculative_pushes``, and a discarded push is *never* observed
        by application reads.

    ``deferred_reads``
        Client-side: non-blocking ``clEnqueueReadBuffer`` calls recorded
        as *deferred fetches* on the window graph (``defer_reads=True``)
        — zero network traffic and zero virtual-time advance at enqueue;
        the bytes ride a later relevant flush.
    ``deferred_read_batches``
        Client-side: deferred-read resolution groups that actually ran
        a sync point (one group may cover several pending reads, whose
        downloads fuse under ``coalesce_reads`` exactly like a blocking
        read's gang).

    ``round_trips`` (a property) is ``requests + batches + bulk_fetches``:
    every synchronous client<->server exchange the process blocked on.
    """

    __slots__ = (
        "requests",
        "batches",
        "batched_commands",
        "batched_commands_received",
        "poisoned_commands",
        "notifications",
        "streams",
        "bulk_sends",
        "bulk_fetches",
        "bytes_sent",
        "bytes_received",
        "encode_cache_hits",
        "decode_cache_hits",
        "reply_cache_hits",
        "relays_deferred",
        "relays_suppressed",
        "coalesced_uploads",
        "coalesced_upload_sections",
        "coalesced_downloads",
        "coalesced_download_sections",
        "coalesced_reads",
        "coalesced_read_sections",
        "flush_barriers",
        "coalesced_peer_transfers",
        "coalesced_peer_transfer_sections",
        "prefix_flushes",
        "dropped_event_statuses",
        "timeouts",
        "retries",
        "replayed_batches",
        "deduped_batches",
        "evicted_replicas",
        "dead_daemons",
        "lost_notifications",
        "refused_connections",
        "quota_rejections",
        "programs_built",
        "build_cache_hits",
        "negative_build_hits",
        "binaries_shipped",
        "build_seconds_saved",
        "cache_entries_rehydrated",
        "speculative_pushes",
        "daemon_pushes",
        "push_bytes",
        "push_commits",
        "wasted_pushes",
        "deferred_reads",
        "deferred_read_batches",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def round_trips(self) -> int:
        """Synchronous exchanges initiated: requests + batches + fetches."""
        return self.requests + self.batches + self.bulk_fetches

    def snapshot(self) -> Dict[str, int]:
        """All counters (plus the derived ``round_trips``) as a dict."""
        return {name: getattr(self, name) for name in self.__slots__} | {
            "round_trips": self.round_trips
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetStats {self.snapshot()}>"


class RequestOutcome:
    """Timing breakdown of one request/response round trip."""

    __slots__ = ("response", "sent_at", "request_arrival", "handled_at", "reply_arrival")

    def __init__(
        self,
        response: Response,
        sent_at: float,
        request_arrival: float,
        handled_at: float,
        reply_arrival: float,
    ) -> None:
        self.response = response
        self.sent_at = sent_at
        self.request_arrival = request_arrival
        self.handled_at = handled_at
        self.reply_arrival = reply_arrival

    @property
    def round_trip(self) -> float:
        """Elapsed virtual time from send to reply arrival."""
        return self.reply_arrival - self.sent_at


class BatchOutcome:
    """Pipelined outcome of one :meth:`GCFProcess.request_batch` trip.

    Carries the decoded per-command responses (batch order) plus the
    timing of the single round trip all of them shared.
    """

    __slots__ = ("responses", "sent_at", "request_arrival", "handled_at", "reply_arrival")

    def __init__(
        self,
        responses: List[Response],
        sent_at: float,
        request_arrival: float,
        handled_at: float,
        reply_arrival: float,
    ) -> None:
        self.responses = responses
        self.sent_at = sent_at
        self.request_arrival = request_arrival
        self.handled_at = handled_at
        self.reply_arrival = reply_arrival

    @property
    def round_trip(self) -> float:
        """Elapsed virtual time the whole batch's round trip took."""
        return self.reply_arrival - self.sent_at

    def __len__(self) -> int:
        return len(self.responses)


class GCFProcess:
    """A named communicating process on a host."""

    def __init__(self, name: str, host: Host, network: Network) -> None:
        self.name = name
        self.host = host
        self.network = network
        self.cpu = Timeline(name=f"{name}.cpu")
        self.stats = NetStats()
        self._request_handlers: Dict[Type[Message], RequestHandler] = {}
        self._notification_handlers: Dict[Type[Message], NotificationHandler] = {}
        self._bulk_sink_handlers: Dict[Type[Message], Callable] = {}
        self._bulk_source_handlers: Dict[Type[Message], Callable] = {}
        self._connect_handler: Optional[Callable[[str, Any, float], None]] = None
        self._disconnect_handler: Optional[Callable[[str, float], None]] = None
        #: Extra server-side work per accepted connection (session setup,
        #: worker spawn).  Daemons set this; plain processes keep 0.
        self.connect_setup_duration = 0.0
        # Bounded byte-identical reply/command decode reuse (hit counts
        # surface as ``stats.decode_cache_hits``); see repro.net.messages.
        self._decode_cache = WireDecodeCache()
        self.peers: Dict[str, "GCFProcess"] = {}
        # Bounded log of (arrival_time, sender, message) for
        # introspection/tests; see :meth:`set_notification_log_limit`.
        self.notification_log: Deque[Tuple[float, str, Message]] = deque(
            maxlen=NOTIFICATION_LOG_LIMIT
        )

    def set_notification_log_limit(self, limit: Optional[int]) -> None:
        """Re-bound the notification log; ``None`` makes it unbounded
        (opt-in, for tests that need the full history)."""
        self.notification_log = deque(self.notification_log, maxlen=limit)

    # ------------------------------------------------------------------
    # handler registration (server side)
    # ------------------------------------------------------------------
    def on_request(self, msg_cls: Type[Message]) -> Callable[[RequestHandler], RequestHandler]:
        """Decorator registering the request handler for ``msg_cls``."""

        def register(fn: RequestHandler) -> RequestHandler:
            self._request_handlers[msg_cls] = fn
            return fn

        return register

    def on_notification(self, msg_cls: Type[Message]) -> Callable[[NotificationHandler], NotificationHandler]:
        """Decorator registering the notification handler for ``msg_cls``."""

        def register(fn: NotificationHandler) -> NotificationHandler:
            self._notification_handlers[msg_cls] = fn
            return fn

        return register

    def on_bulk_sink(self, msg_cls: Type[Message]):
        """Register a receiver for pushed bulk data: the handler gets
        ``(init_msg, payload, arrival_time, sender)`` after the raw stream
        lands (Section III-B upload path)."""

        def register(fn):
            self._bulk_sink_handlers[msg_cls] = fn
            return fn

        return register

    def on_bulk_source(self, msg_cls: Type[Message]):
        """Register a provider for pulled bulk data: the handler gets
        ``(request_msg, t_start, sender)`` and returns
        ``(response, t_done, payload, nbytes)`` (download path)."""

        def register(fn):
            self._bulk_source_handlers[msg_cls] = fn
            return fn

        return register

    def on_connect(self, fn: Callable[[str, Any, float], None]) -> Callable[[str, Any, float], None]:
        """Register the handler observing accepted connections."""
        self._connect_handler = fn
        return fn

    def install_batch_dispatch(
        self,
        on_error: Optional[Callable[[str], Response]] = None,
        reply_cache_size: int = 256,
        guard: Optional[Callable[[Message, "GCFProcess"], Optional[Response]]] = None,
        observe: Optional[Callable[[Message, Response, "GCFProcess"], None]] = None,
        replay_cache_size: int = 512,
    ) -> None:
        """Make this process accept :class:`CommandBatch` envelopes.

        The installed handler decodes the envelope's sub-commands once,
        charges the host's (cheaper) ``batch_command_overhead`` per
        command, and replays each through the handler registered for its
        type, in order — the server half of asynchronous batched call
        forwarding.  ``on_error`` maps a description of an undispatchable
        sub-command (undecodable bytes, no handler, nested batch) to the
        Response placed in its reply slot; without it such a command
        raises :class:`NetworkError`.

        ``guard``/``observe`` are the dispatch *interceptor* hooks the
        daemon uses for dependency poisoning: ``guard(sub, sender)`` may
        return a Response that short-circuits the sub-command (placed in
        its positional reply slot without running the handler, counted in
        ``stats.poisoned_commands``); ``observe(sub, response, sender)``
        sees every sub-command's outcome — guarded or executed — so a
        failed creation can poison its provisional IDs for later
        commands.  Failures are therefore always reported *positionally*
        in the batch reply: slot ``i`` answers for command ``i``, whether
        it ran, was poisoned, or could not be dispatched at all.

        Two per-process caches remove redundant codec work without ever
        skipping a handler (handlers have side effects and always run):

        * byte-identical sub-commands — e.g. a ``SetKernelArgRequest``
          re-sent with unchanged arguments — are decoded once through
          the process's :class:`~repro.net.messages.WireDecodeCache`;
        * the **reply cache** (:class:`~repro.net.messages.ReplyCache`,
          bounded by ``reply_cache_size``) is keyed by the sub-command's
          raw bytes (its request digest) and reuses the reply's encoding
          whenever the handler produced a response equal to last time —
          in steady state nearly every deferred command answers the
          identical success ``Ack``, so replicated requests are encoded
          once and their replies decoded from cache on the client side.
          Guarded and undispatchable replies go through the same cache,
          so repeated failures account identically to repeated
          successes.

        Every received sub-command — executed, guarded or
        undispatchable — bumps ``stats.batched_commands_received``
        exactly once; cache hits surface as ``stats.decode_cache_hits``
        and ``stats.reply_cache_hits``.

        **Replay dedupe** (exactly-once effect): a batch carrying a
        replay identity (``msg.seq >= 0``) is looked up in a bounded
        cache keyed ``(sender name, epoch, seq)`` *before* any handler
        runs.  A hit re-answers the replayed batch from the cached
        :class:`CommandBatchResponse` — no handler re-executes, no
        kernel runs twice, no transfer double-applies — and bumps
        ``stats.deduped_batches`` (the batch's sub-commands are *not*
        re-counted in ``batched_commands_received``).  Identity-less
        batches (``seq < 0``, the happy path) skip the lookup entirely.
        """
        reply_cache = ReplyCache(maxsize=reply_cache_size)
        replay_cache: "OrderedDict[Tuple[str, int, int], CommandBatchResponse]" = OrderedDict()

        def encode_reply(raw: bytes, response: Response) -> bytes:
            reply_hits = reply_cache.hits
            wire = reply_cache.encode(raw, response)
            self.stats.reply_cache_hits += reply_cache.hits - reply_hits
            return wire

        def undispatchable(raw: bytes, detail: str) -> bytes:
            if on_error is None:
                raise NetworkError(f"process {self.name!r}: {detail}")
            return encode_reply(raw, on_error(detail))

        @self.on_request(CommandBatch)
        def dispatch_batch(msg: CommandBatch, t: float, sender: "GCFProcess"):
            replay_key = None
            if msg.seq >= 0:
                replay_key = (sender.name, msg.epoch, msg.seq)
                cached = replay_cache.get(replay_key)
                if cached is not None:
                    replay_cache.move_to_end(replay_key)
                    self.stats.deduped_batches += 1
                    return cached, t
            per_cmd = self.host.spec.batch_command_overhead
            results: List[bytes] = []
            tcur = t
            self.stats.batched_commands_received += len(msg.commands)
            for raw in msg.commands:
                try:
                    decode_hits = self._decode_cache.hits
                    sub = self._decode_cache.decode(raw)
                    self.stats.decode_cache_hits += self._decode_cache.hits - decode_hits
                except CodecError as exc:
                    results.append(undispatchable(raw, f"undecodable batched command: {exc}"))
                    continue
                handler = self._request_handlers.get(type(sub))
                if handler is None or isinstance(sub, CommandBatch):
                    results.append(
                        undispatchable(raw, f"{type(sub).__name__} cannot be batch-forwarded")
                    )
                    continue
                if guard is not None:
                    short = guard(sub, sender)
                    if short is not None:
                        # Skipping still costs the dispatch slice: the
                        # daemon decoded and inspected the command to
                        # decide not to run it.
                        iv = self.cpu.allocate(
                            tcur, per_cmd, f"{type(sub).__name__}:skipped"
                        )
                        tcur = iv.end
                        # Success short-circuits (a no-op release of a
                        # never-materialised handle) are not poisoned
                        # rejections; count only error skips.
                        if getattr(short, "error", 0):
                            self.stats.poisoned_commands += 1
                        if observe is not None:
                            observe(sub, short, sender)
                        results.append(encode_reply(raw, short))
                        continue
                iv = self.cpu.allocate(tcur, per_cmd, type(sub).__name__)
                response, t_done = handler(sub, iv.end, sender)
                if t_done < iv.end:
                    raise NetworkError(
                        f"handler for {type(sub).__name__} returned "
                        f"t_done={t_done} < start={iv.end}"
                    )
                tcur = t_done
                if observe is not None:
                    observe(sub, response, sender)
                results.append(encode_reply(raw, response))
            reply = CommandBatchResponse(results=results)
            if replay_key is not None and replay_cache_size > 0:
                replay_cache[replay_key] = reply
                if len(replay_cache) > replay_cache_size:
                    replay_cache.popitem(last=False)
            return reply, tcur

    def on_disconnect(self, fn: Callable[[str, float], None]) -> Callable[[str, float], None]:
        """Register the handler observing peer disconnects."""
        self._disconnect_handler = fn
        return fn

    # ------------------------------------------------------------------
    # connection management (client side)
    # ------------------------------------------------------------------
    def connect(self, target: "GCFProcess", t: float, payload: Any = None) -> float:
        """Handshake with ``target``; returns the time the connection is
        established on the caller side.  The target's connect handler may
        raise :class:`ConnectionRefused` (e.g. invalid auth ID)."""
        arrival = self.network.transfer(self.host, target.host, t, 128)
        setup = target.host.spec.request_overhead + target.connect_setup_duration
        iv = target.cpu.allocate(arrival, setup, "connect")
        if target._connect_handler is not None:
            target._connect_handler(self.name, payload, iv.end)  # may raise
        back = self.network.transfer(target.host, self.host, iv.end, 128)
        self.peers[target.name] = target
        target.peers[self.name] = self
        return back

    def disconnect(self, target: "GCFProcess", t: float) -> float:
        """Tear down; the target's disconnect handler observes it."""
        if target.name not in self.peers:
            raise NetworkError(f"{self.name!r} is not connected to {target.name!r}")
        arrival = self.network.transfer(self.host, target.host, t, 128)
        if target._disconnect_handler is not None:
            target._disconnect_handler(self.name, arrival)
        del self.peers[target.name]
        target.peers.pop(self.name, None)
        return arrival

    # ------------------------------------------------------------------
    # message-based communication
    # ------------------------------------------------------------------
    def request(self, target: "GCFProcess", msg: Request, t: float) -> RequestOutcome:
        """Synchronous request/response round trip."""
        handler = target._request_handlers.get(type(msg))
        if handler is None:
            raise NetworkError(
                f"process {target.name!r} has no handler for {type(msg).__name__}"
            )
        arrival = self.network.transfer(self.host, target.host, t, msg.wire_size, tag=type(msg).__name__)
        iv = target.cpu.allocate(arrival, target.host.spec.request_overhead, type(msg).__name__)
        response, t_done = handler(msg, iv.end, self)
        if t_done < iv.end:
            raise NetworkError(
                f"handler for {type(msg).__name__} returned t_done={t_done} < start={iv.end}"
            )
        reply_arrival = self.network.transfer(
            target.host, self.host, t_done, response.wire_size, tag=type(response).__name__
        )
        self.stats.requests += 1
        self.stats.bytes_sent += msg.wire_size
        self.stats.bytes_received += response.wire_size
        return RequestOutcome(response, t, arrival, t_done, reply_arrival)

    def request_batch(
        self,
        target: "GCFProcess",
        msgs: Sequence[Request],
        t: float,
        epoch: int = 0,
        seq: int = -1,
    ) -> BatchOutcome:
        """Forward a whole send window in ONE round trip.

        The commands are serialised into a :class:`CommandBatch` envelope
        (one protocol header for the lot), dispatched by the target's
        ``CommandBatch`` handler — which decodes each sub-command once and
        charges CPU per command — and their responses come back together
        in the single :class:`CommandBatchResponse` reply.

        Encoding is memoised per command instance
        (:meth:`~repro.net.messages.Message.cached_wire`): a command
        replicated into several daemons' windows as the *same* instance
        is encoded exactly once (``stats.encode_cache_hits`` counts the
        reuses).  Reply decoding goes through the process's
        :class:`~repro.net.messages.WireDecodeCache`, so byte-identical
        replies — overwhelmingly the success ``Ack`` — are decoded once
        (``stats.decode_cache_hits``).

        ``epoch``/``seq`` stamp the batch's replay identity for the
        receiver's dispatch dedupe (see :meth:`install_batch_dispatch`);
        the defaults leave the batch identity-less and its wire bytes
        unchanged.
        """
        if not msgs:
            raise ValueError("request_batch needs at least one command")
        handler = target._request_handlers.get(CommandBatch)
        if handler is None:
            raise NetworkError(
                f"process {target.name!r} does not accept command batches"
            )
        commands = []
        for m in msgs:
            if "_cached_wire" in m.__dict__:
                self.stats.encode_cache_hits += 1
            commands.append(m.cached_wire())
        batch = CommandBatch(commands=commands, epoch=epoch, seq=seq)
        arrival = self.network.transfer(
            self.host, target.host, t, batch.wire_size, tag="CommandBatch"
        )
        iv = target.cpu.allocate(arrival, target.host.spec.request_overhead, "CommandBatch")
        reply, t_done = handler(batch, iv.end, self)
        if t_done < iv.end:
            raise NetworkError(
                f"handler for CommandBatch returned t_done={t_done} < start={iv.end}"
            )
        if not isinstance(reply, CommandBatchResponse) or len(reply.results) != len(msgs):
            raise NetworkError(
                f"process {target.name!r} answered a {len(msgs)}-command batch with "
                f"{type(reply).__name__}"
            )
        reply_arrival = self.network.transfer(
            target.host, self.host, t_done, reply.wire_size, tag="CommandBatchResponse"
        )
        self.stats.batches += 1
        self.stats.batched_commands += len(msgs)
        self.stats.bytes_sent += batch.wire_size
        self.stats.bytes_received += reply.wire_size
        decode_hits = self._decode_cache.hits
        responses = [self._decode_cache.decode(raw) for raw in reply.results]
        self.stats.decode_cache_hits += self._decode_cache.hits - decode_hits
        return BatchOutcome(responses, t, arrival, t_done, reply_arrival)

    def notify(self, target: "GCFProcess", msg: Notification, t: float) -> float:
        """One-way asynchronous notification; returns delivery time."""
        arrival = self.network.transfer(self.host, target.host, t, msg.wire_size, tag=type(msg).__name__)
        target.notification_log.append((arrival, self.name, msg))
        self.stats.notifications += 1
        self.stats.bytes_sent += msg.wire_size
        handler = target._notification_handlers.get(type(msg))
        if handler is not None:
            handler(msg, arrival, self)
        return arrival

    # ------------------------------------------------------------------
    # stream-based communication
    # ------------------------------------------------------------------
    def stream(
        self,
        target: "GCFProcess",
        nbytes: int,
        t: float,
        init: Optional[Request] = None,
        tag: object = None,
    ) -> StreamResult:
        """Bulk data transfer: an initialising request/response exchange
        followed by the raw payload (Section III-B).  Returns timing."""
        if init is not None:
            outcome = self.request(target, init, t)
            start = outcome.reply_arrival
        else:
            # Stream channel already set up: only a half handshake.
            start = self.network.transfer(self.host, target.host, t, 96, tag="stream-init")
        arrival = self.network.transfer(self.host, target.host, start, nbytes, tag=tag or "stream")
        self.stats.streams += 1
        self.stats.bytes_sent += nbytes
        return StreamResult(requested_at=t, started_at=start, arrival=arrival, nbytes=nbytes)

    def send_bulk(
        self,
        target: "GCFProcess",
        init: Request,
        payload: Any,
        nbytes: int,
        t: float,
    ) -> Tuple[RequestOutcome, float]:
        """Stream-based upload: initialising request/response exchange,
        then the raw payload.  ``payload`` is handed to the target's
        bulk-sink handler as-is (zero-copy: pass an ndarray or memoryview
        and no intermediate byte string is materialised).  Returns
        ``(init_outcome, arrival)``.

        When the init reply reports an error the stream is aborted: the
        payload is never transferred and the sink never runs — the
        receiver's up-front validation (stale IDs, malformed section
        tables) rejects the upload before any state changes, and the
        caller surfaces the error response.
        """
        sink = target._bulk_sink_handlers.get(type(init))
        if sink is None:
            raise NetworkError(
                f"process {target.name!r} has no bulk sink for {type(init).__name__}"
            )
        outcome = self.request(target, init, t)
        if getattr(outcome.response, "error", 0):
            return outcome, outcome.reply_arrival
        arrival = self.network.transfer(
            self.host, target.host, outcome.reply_arrival, nbytes, tag=f"bulk:{type(init).__name__}"
        )
        self.stats.bulk_sends += 1
        self.stats.bytes_sent += nbytes
        sink(init, payload, arrival, self)
        return outcome, arrival

    def fetch_bulk(self, target: "GCFProcess", request: Request, t: float) -> Tuple[Response, Any, float]:
        """Stream-based download: request, then the raw payload streams
        back.  Returns ``(response, payload, arrival)``; the payload is
        whatever the bulk source produced (ndarray/bytes), unconverted."""
        source = target._bulk_source_handlers.get(type(request))
        if source is None:
            raise NetworkError(
                f"process {target.name!r} has no bulk source for {type(request).__name__}"
            )
        arrival = self.network.transfer(self.host, target.host, t, request.wire_size)
        iv = target.cpu.allocate(arrival, target.host.spec.request_overhead, type(request).__name__)
        response, t_done, payload, nbytes = source(request, iv.end, self)
        reply_arrival = self.network.transfer(target.host, self.host, t_done, response.wire_size)
        data_arrival = self.network.transfer(
            target.host, self.host, reply_arrival, nbytes, tag=f"bulk:{type(request).__name__}"
        )
        self.stats.bulk_fetches += 1
        self.stats.bytes_sent += request.wire_size
        self.stats.bytes_received += response.wire_size + nbytes
        return response, payload, data_arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GCFProcess {self.name!r} on {self.host.name!r}>"
