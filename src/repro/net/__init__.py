"""Simulated network + communication framework.

The stack, bottom-up:

* :mod:`repro.net.frames` — wire-time arithmetic for a link technology.
* :mod:`repro.net.nic` / :mod:`repro.net.link` — per-host full-duplex NIC
  timelines; shared-NIC contention is what produces the growing transfer
  times in the paper's Fig. 6.
* :mod:`repro.net.network` — host registry and host-to-host transfers.
* :mod:`repro.net.codec` — tagged binary wire codec (message sizes are
  *measured from real encodings*, not guessed).
* :mod:`repro.net.messages` — message base classes and the type registry.
* :mod:`repro.net.gcf` — the Generic Communication Framework look-alike the
  paper builds on ([15], [16]): process objects, request/response
  (message-based communication) and bulk data streams (stream-based
  communication).
* :mod:`repro.net.iperf` — the bandwidth measurement tool used for the
  Fig. 8 reference line.
"""

from repro.net.codec import CodecError, decode, encode, encoded_size
from repro.net.frames import transfer_duration
from repro.net.link import (
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    LinkSevered,
    MessageDropped,
    NetworkError,
    StreamTruncated,
)
from repro.sim.channel import ChannelClosed
from repro.sim.errors import CommunicationError
from repro.net.messages import (
    CommandBatch,
    CommandBatchResponse,
    Message,
    Notification,
    Request,
    Response,
    message_type,
)
from repro.net.network import Network
from repro.net.nic import NIC
from repro.net.gcf import BatchOutcome, GCFProcess, NetStats, RequestOutcome
from repro.net.streams import StreamResult, as_byte_view, as_uint8_array, payload_nbytes
from repro.net.iperf import IperfResult, run_iperf

__all__ = [
    "BatchOutcome",
    "ChannelClosed",
    "CodecError",
    "CommandBatch",
    "CommandBatchResponse",
    "CommunicationError",
    "ConnectionRefused",
    "ConnectionReset",
    "GCFProcess",
    "HostUnreachable",
    "IperfResult",
    "LinkSevered",
    "Message",
    "MessageDropped",
    "NIC",
    "NetStats",
    "Network",
    "NetworkError",
    "StreamTruncated",
    "Notification",
    "Request",
    "RequestOutcome",
    "Response",
    "StreamResult",
    "as_byte_view",
    "as_uint8_array",
    "decode",
    "encode",
    "encoded_size",
    "message_type",
    "payload_nbytes",
    "run_iperf",
    "transfer_duration",
]
