"""Simulated network + communication framework.

The stack, bottom-up:

* :mod:`repro.net.frames` — wire-time arithmetic for a link technology.
* :mod:`repro.net.nic` / :mod:`repro.net.link` — per-host full-duplex NIC
  timelines; shared-NIC contention is what produces the growing transfer
  times in the paper's Fig. 6.
* :mod:`repro.net.network` — host registry and host-to-host transfers.
* :mod:`repro.net.codec` — tagged binary wire codec (message sizes are
  *measured from real encodings*, not guessed).
* :mod:`repro.net.messages` — message base classes and the type registry.
* :mod:`repro.net.gcf` — the Generic Communication Framework look-alike the
  paper builds on ([15], [16]): process objects, request/response
  (message-based communication) and bulk data streams (stream-based
  communication).
* :mod:`repro.net.iperf` — the bandwidth measurement tool used for the
  Fig. 8 reference line.
"""

from repro.net.codec import CodecError, decode, encode, encoded_size
from repro.net.frames import transfer_duration
from repro.net.link import NetworkError
from repro.net.messages import Message, Notification, Request, Response, message_type
from repro.net.network import Network
from repro.net.nic import NIC
from repro.net.gcf import GCFProcess, RequestOutcome
from repro.net.streams import StreamResult
from repro.net.iperf import IperfResult, run_iperf

__all__ = [
    "CodecError",
    "GCFProcess",
    "IperfResult",
    "Message",
    "NIC",
    "Network",
    "NetworkError",
    "Notification",
    "Request",
    "RequestOutcome",
    "Response",
    "StreamResult",
    "decode",
    "encode",
    "encoded_size",
    "message_type",
    "run_iperf",
    "transfer_duration",
]
