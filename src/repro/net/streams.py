"""Stream-based bulk data transfer: results and zero-copy payload views.

The stream path (Section III-B) moves raw binary payloads; the helpers
here let both endpoints hand buffers straight through the buffer protocol
without intermediate ``tobytes()``/``bytearray`` copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


def as_byte_view(payload: Any) -> memoryview:
    """A flat, read-capable ``uint8`` view of ``payload`` without copying.

    Accepts ``bytes``, ``bytearray``, ``memoryview`` and contiguous
    ``numpy.ndarray`` payloads; non-contiguous arrays are the single case
    that forces a compacting copy.
    """
    if isinstance(payload, np.ndarray):
        return memoryview(np.ascontiguousarray(payload)).cast("B")
    view = memoryview(payload)
    if not view.c_contiguous:  # cast('B') requires C-contiguity
        view = memoryview(bytes(view))
    return view.cast("B")


def as_uint8_array(payload: Any) -> np.ndarray:
    """A read-only ``uint8`` ndarray view over ``payload`` (zero-copy)."""
    if isinstance(payload, np.ndarray) and payload.dtype == np.uint8 and payload.ndim == 1:
        return payload
    return np.frombuffer(as_byte_view(payload), dtype=np.uint8)


def payload_nbytes(payload: Any) -> int:
    """Byte length of a bulk payload without materialising it."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    return memoryview(payload).nbytes


@dataclass(frozen=True)
class StreamResult:
    """Timing of one bulk transfer.

    ``requested_at`` — when the sender initiated the stream;
    ``started_at`` — when the raw payload began flowing (after the
    initialising request/response exchange);
    ``arrival`` — when the last byte reached the destination.
    """

    requested_at: float
    started_at: float
    arrival: float
    nbytes: int

    @property
    def total_time(self) -> float:
        """Init exchange plus payload time."""
        return self.arrival - self.requested_at

    @property
    def payload_time(self) -> float:
        """Raw-payload flow time only."""
        return self.arrival - self.started_at

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second over the whole transfer."""
        if self.total_time <= 0.0:
            return float("inf")
        return self.nbytes / self.total_time
