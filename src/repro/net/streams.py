"""Stream-based bulk data transfer results."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamResult:
    """Timing of one bulk transfer.

    ``requested_at`` — when the sender initiated the stream;
    ``started_at`` — when the raw payload began flowing (after the
    initialising request/response exchange);
    ``arrival`` — when the last byte reached the destination.
    """

    requested_at: float
    started_at: float
    arrival: float
    nbytes: int

    @property
    def total_time(self) -> float:
        return self.arrival - self.requested_at

    @property
    def payload_time(self) -> float:
        return self.arrival - self.started_at

    @property
    def effective_bandwidth(self) -> float:
        if self.total_time <= 0.0:
            return float("inf")
        return self.nbytes / self.total_time
