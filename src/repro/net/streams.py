"""Stream-based bulk data transfer: results and zero-copy payload views.

The stream path (Section III-B) moves raw binary payloads; the helpers
here let both endpoints hand buffers straight through the buffer protocol
without intermediate ``tobytes()``/``bytearray`` copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


def as_byte_view(payload: Any) -> memoryview:
    """A flat, read-capable ``uint8`` view of ``payload`` without copying.

    Accepts ``bytes``, ``bytearray``, ``memoryview`` and contiguous
    ``numpy.ndarray`` payloads; non-contiguous arrays are the single case
    that forces a compacting copy.
    """
    if isinstance(payload, np.ndarray):
        return memoryview(np.ascontiguousarray(payload)).cast("B")
    view = memoryview(payload)
    if not view.c_contiguous:  # cast('B') requires C-contiguity
        view = memoryview(bytes(view))
    return view.cast("B")


def as_uint8_array(payload: Any) -> np.ndarray:
    """A read-only ``uint8`` ndarray view over ``payload`` (zero-copy)."""
    if isinstance(payload, np.ndarray) and payload.dtype == np.uint8 and payload.ndim == 1:
        return payload
    return np.frombuffer(as_byte_view(payload), dtype=np.uint8)


def payload_nbytes(payload: Any) -> int:
    """Byte length of a bulk payload without materialising it."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    return memoryview(payload).nbytes


def split_sections(payload: Any, nbytes_list) -> list:
    """Per-section ``uint8`` views of a coalesced bulk payload.

    A merged transfer's payload arrives either as the sender's list of
    per-section buffers (the zero-copy path — each element becomes its
    own view) or as one flat concatenation (a decoded stream), which is
    split at the byte counts in ``nbytes_list``.  The single splitting
    rule shared by both ends of the wire, so section boundaries can
    never drift between the daemon's sink and the client's fetch."""
    if isinstance(payload, (list, tuple)):
        return [as_uint8_array(part) for part in payload]
    flat = as_uint8_array(payload)
    sections, cursor = [], 0
    for nbytes in nbytes_list:
        sections.append(flat[cursor : cursor + nbytes])
        cursor += nbytes
    return sections


@dataclass(frozen=True)
class StreamResult:
    """Timing of one bulk transfer.

    ``requested_at`` — when the sender initiated the stream;
    ``started_at`` — when the raw payload began flowing (after the
    initialising request/response exchange);
    ``arrival`` — when the last byte reached the destination.
    """

    requested_at: float
    started_at: float
    arrival: float
    nbytes: int

    @property
    def total_time(self) -> float:
        """Init exchange plus payload time."""
        return self.arrival - self.requested_at

    @property
    def payload_time(self) -> float:
        """Raw-payload flow time only."""
        return self.arrival - self.started_at

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second over the whole transfer."""
        if self.total_time <= 0.0:
            return float("inf")
        return self.nbytes / self.total_time
