"""Deployment helpers: assemble clusters, daemons, drivers and managers.

Used by the examples, the integration tests and the benchmark harness to
stand up the paper's three testbeds with one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.client.api import DOpenCLAPI
from repro.core.client.connection import DaemonDirectory
from repro.core.client.driver import DOpenCLDriver
from repro.core.client.resilience import RetryPolicy
from repro.core.daemon.admission import AdmissionPolicy
from repro.core.daemon.daemon import Daemon
from repro.core.devmgr.manager import DeviceManager
from repro.hw.cluster import Cluster
from repro.hw.node import Host
from repro.ocl.api import NativeAPI
from repro.sim.clock import VirtualClock


@dataclass
class Deployment:
    """A running dOpenCL installation on a cluster."""

    cluster: Cluster
    daemons: List[Daemon]
    directory: DaemonDirectory
    device_manager: Optional[DeviceManager] = None
    drivers: List[DOpenCLDriver] = field(default_factory=list)
    apis: List[DOpenCLAPI] = field(default_factory=list)

    @property
    def api(self) -> DOpenCLAPI:
        return self.apis[0]

    @property
    def driver(self) -> DOpenCLDriver:
        return self.drivers[0]

    def daemon_on(self, host_name: str) -> Daemon:
        for daemon in self.daemons:
            if daemon.host.name == host_name:
                return daemon
        raise KeyError(host_name)


def server_config_text(cluster: Cluster) -> str:
    """A paper-Listing-2 style server list for all cluster servers."""
    lines = ["# dOpenCL server list (generated)"]
    lines.extend(server.name for server in cluster.servers)
    return "\n".join(lines)


def deploy_dopencl(
    cluster: Cluster,
    coherence_protocol: str = "msi",
    managed: bool = False,
    devmgr_strategy: str = "round_robin",
    devmgr_config_texts: Optional[List[str]] = None,
    workload_scale: float = 1.0,
    n_clients: int = 1,
    batch_window: Optional[int] = None,
    defer_event_relays: bool = True,
    coalesce_uploads: bool = True,
    defer_creations: bool = True,
    coalesce_transfers: bool = True,
    coalesce_reads: bool = True,
    push_transfers: bool = True,
    defer_reads: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
    client_server_lists: Optional[List[List[str]]] = None,
    admission: Optional[AdmissionPolicy] = None,
    program_cache: bool = True,
) -> Deployment:
    """Install daemons on every server and client drivers on the client
    host(s).

    With ``managed=True`` a device manager is placed on the first server
    host, daemons start in managed mode, and each client driver gets the
    corresponding entry of ``devmgr_config_texts`` (paper Listing 3)
    instead of a server list.

    ``batch_window`` tunes the drivers' asynchronous call-forwarding
    window (``None`` keeps the driver default; ``0`` disables batching so
    every forwarded call is a synchronous round trip).
    ``defer_event_relays`` / ``coalesce_uploads`` / ``defer_creations`` /
    ``coalesce_transfers`` / ``coalesce_reads`` toggle the pipeline
    extensions (all default on; turning all off reproduces the PR-1
    forwarding behaviour — the benchmark baseline: synchronous creation
    fan-outs, synchronous relays, per-transfer streams in every
    direction, one fetch per blocking read).  ``push_transfers`` toggles
    daemon-initiated predictive replication (PR 9) on every driver;
    ``False`` restores pure demand-driven coherence.  ``defer_reads``
    toggles window-deferred non-blocking reads on every driver (on, the
    default, a ``blocking=False`` read records a deferred fetch that
    rides the next relevant flush; ``False`` is the streaming-bench
    ablation that fetches eagerly at enqueue).

    ``retry_policy`` installs client-side transport resilience (a
    :class:`~repro.core.client.resilience.RetryPolicy`) on every driver;
    the default ``None`` keeps the exact pre-resilience transport path.

    ``client_server_lists`` gives each (non-managed) client its *own*
    server list — entry ``i`` is the list of server host names client
    ``i`` connects to, so multi-tenant deployments can pin clients to
    disjoint or overlapping daemon subsets.  The default ``None`` keeps
    every client on the full server set.  ``admission`` installs a
    per-daemon :class:`~repro.core.daemon.admission.AdmissionPolicy`
    (session cap, per-client registry quota, status-buffer bound) on
    every daemon.

    ``program_cache`` toggles the cluster-wide content-addressed build
    cache (client build records, daemon build caches, sibling binary
    shipping) on every daemon and driver; ``False`` is the ablation
    baseline that rebuilds from source everywhere.
    """
    manager = None
    if managed:
        manager = DeviceManager(
            cluster.servers[0], cluster.network, strategy=devmgr_strategy
        )
    daemons = []
    for server in cluster.servers:
        daemon = Daemon(
            server,
            cluster.network,
            device_manager=manager,
            admission=admission,
            program_cache=program_cache,
        )
        daemon.workload_scale = workload_scale
        daemon.start(0.0)
        daemons.append(daemon)
    # Daemons know their cluster siblings from startup (dOpenCL's node
    # file): the full peer mesh is wired here so the binary registry
    # ships builds cluster-wide even when no single client's context
    # spans two daemons (clients wire the same links incrementally as
    # they connect, which is too late for disjoint single-node tenants).
    for daemon in daemons:
        for peer in daemons:
            if peer is not daemon:
                daemon.peer_daemons[peer.name] = peer
    directory = DaemonDirectory.of(daemons)
    deployment = Deployment(
        cluster=cluster, daemons=daemons, directory=directory, device_manager=manager
    )
    client_hosts = [cluster.client, *cluster.extra_clients][:n_clients]
    if len(client_hosts) < n_clients:
        raise ValueError(f"cluster has only {len(client_hosts)} client hosts, need {n_clients}")
    for i, host in enumerate(client_hosts):
        kwargs = {
            "defer_event_relays": defer_event_relays,
            "coalesce_uploads": coalesce_uploads,
            "defer_creations": defer_creations,
            "coalesce_transfers": coalesce_transfers,
            "coalesce_reads": coalesce_reads,
            "push_transfers": push_transfers,
            "defer_reads": defer_reads,
            "retry_policy": retry_policy,
            "program_cache": program_cache,
        }
        if batch_window is not None:
            kwargs["batch_window"] = batch_window
        if managed:
            kwargs["devmgr_config_text"] = (devmgr_config_texts or [])[i]
            kwargs["device_manager"] = manager
        elif client_server_lists is not None:
            kwargs["config_text"] = "\n".join(client_server_lists[i])
        else:
            kwargs["config_text"] = server_config_text(cluster)
        driver = DOpenCLDriver(
            host,
            cluster.network,
            directory=directory,
            coherence_protocol=coherence_protocol,
            **kwargs,
        )
        deployment.drivers.append(driver)
        deployment.apis.append(DOpenCLAPI(driver))
    return deployment


def native_api_on(host: Host, workload_scale: float = 1.0, clock: Optional[VirtualClock] = None) -> NativeAPI:
    """A native (single-node) OpenCL installation on ``host``."""
    api = NativeAPI(host, clock=clock)
    api.workload_scale = workload_scale
    return api
