"""Operator utilities for inspecting simulated deployments."""

from repro.tools.cachestat import cachestat_text
from repro.tools.clinfo import clinfo_text

__all__ = ["cachestat_text", "clinfo_text"]
