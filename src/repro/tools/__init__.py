"""Operator utilities for inspecting simulated deployments."""

from repro.tools.clinfo import clinfo_text

__all__ = ["clinfo_text"]
