"""Documentation lint: docstring coverage and markdown link integrity.

The container has no ``pydocstyle``, so this module implements the two
checks the tier-1 suite gates docs on (``tests/test_doclint.py``):

* :func:`missing_docstrings` — an AST walk enforcing the docstring
  policy over a source tree: every module, public class, public
  module-level function and public method must carry a docstring.
  Private names (leading underscore), dunders and *nested* functions
  (handler closures, decorator bodies) are exempt — they are lexically
  local implementation detail.
* :func:`broken_markdown_links` — resolves every relative markdown link
  (and its ``#anchor``, if any) against the repository: the target file
  must exist and the anchor must match a heading in it, using GitHub's
  slugification.  ``http(s)``/``mailto`` links are skipped (no network
  in tier-1).

Both return human-readable problem strings (empty list = clean) so the
test failure output names every offender directly.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List


def _iter_python_files(roots: Iterable[str]) -> List[str]:
    """Every ``*.py`` under the given directories (sorted, recursive)."""
    out: List[str] = []
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _class_problems(path: str, node: ast.ClassDef) -> List[str]:
    problems = []
    if _is_public(node.name) and not ast.get_docstring(node):
        problems.append(f"{path}:{node.lineno}: class {node.name} has no docstring")
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(child.name) and not ast.get_docstring(child):
                problems.append(
                    f"{path}:{child.lineno}: method "
                    f"{node.name}.{child.name} has no docstring"
                )
        elif isinstance(child, ast.ClassDef):
            problems.extend(_class_problems(path, child))
    return problems


def missing_docstrings(roots: Iterable[str]) -> List[str]:
    """All docstring-policy violations under ``roots`` (see module doc)."""
    problems: List[str] = []
    for path in _iter_python_files(roots):
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        if not ast.get_docstring(tree):
            problems.append(f"{path}:1: module has no docstring")
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                problems.extend(_class_problems(path, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name) and not ast.get_docstring(node):
                    problems.append(
                        f"{path}:{node.lineno}: function {node.name} has no docstring"
                    )
    return problems


_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation
    stripped, spaces to dashes (backticks/formatting removed first)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_anchors(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as fh:
        body = _CODE_FENCE_RE.sub("", fh.read())
    return [_github_slug(m.group(1)) for m in _HEADING_RE.finditer(body)]


def broken_markdown_links(files: Iterable[str]) -> List[str]:
    """All unresolvable relative links/anchors in the given markdown
    files (see module docstring for the rules)."""
    problems: List[str] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            body = _CODE_FENCE_RE.sub("", fh.read())
        base = os.path.dirname(os.path.abspath(path))
        for match in _LINK_RE.finditer(body):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            ref, _, anchor = target.partition("#")
            if ref:
                resolved = os.path.normpath(os.path.join(base, ref))
                if not os.path.exists(resolved):
                    problems.append(f"{path}: broken link target {target!r}")
                    continue
            else:
                resolved = os.path.abspath(path)  # same-document anchor
            if anchor:
                if not resolved.endswith((".md", ".markdown")):
                    continue  # anchors into source files: not checkable
                if _github_slug(anchor) not in _markdown_anchors(resolved):
                    problems.append(f"{path}: broken anchor {target!r}")
    return problems
