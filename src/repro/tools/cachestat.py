"""A ``cachestat`` inspector for the per-daemon program build caches.

Renders, for every daemon of a deployment, the content-addressed build
cache (:mod:`repro.core.daemon.buildcache`): each entry's short source
digest, build options, kind (``binary`` / ``negative``), shipping size
and hit count, plus the daemon's build counters and the resulting
cache-hit ratio.  The first thing an operator runs when asking "is the
cluster really compiling each program once?".

Since PR 9 the dump also covers the coherence layer: each daemon's
**replica residency** (how many live buffers hold a valid copy on that
daemon, by directory state — computed from the clients' coherence
directories, which are the authoritative replica map) and its
**push-protocol tallies** (executed pushes, pushed bytes, replicas
still staged awaiting a commit), followed by a deployment-wide push
summary with the hit/waste ratios
(``push_commits / speculative_pushes`` and
``wasted_pushes / speculative_pushes``).

Works against any object exposing ``daemons`` (a
:class:`~repro.testbed.Deployment`) or directly against an iterable of
daemons (residency and the push summary need the deployment's drivers,
so they are skipped for a bare iterable).  Run the demo CLI with
``python -m repro.tools.cachestat``: it stands up a small cluster, has
two tenants build the same source, and dumps the caches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


def _hit_ratio(stats) -> float:
    """Cache answers per build resolution: ``(positive + negative hits)
    / (compiles + hits)``; 0.0 before any build was resolved."""
    hits = stats.build_cache_hits + stats.negative_build_hits
    total = stats.programs_built + hits
    return (hits / total) if total else 0.0


def _entry_line(entry) -> str:
    options = entry.options if entry.options else "(none)"
    return (
        f"    {entry.digest[:12]}  {entry.kind:<8} options={options:<16} "
        f"{entry.nbytes:>6} B  hits={entry.hits}"
    )


def replica_residency(deployment) -> Dict[str, Dict[str, int]]:
    """Per-daemon replica residency: ``daemon name -> {directory-state
    letter -> live buffers in that state on the daemon}``, aggregated
    over every driver's live (unreleased) buffers.  The client rows ride
    along under the reserved party name ``client``."""
    residency: Dict[str, Dict[str, int]] = {}
    for driver in getattr(deployment, "drivers", []):
        for context in driver.contexts:
            for buffer in context.live_buffers:
                if buffer.released:
                    continue
                for party, state in buffer.planner.state.items():
                    per_state = residency.setdefault(party, {})
                    letter = state.value
                    per_state[letter] = per_state.get(letter, 0) + 1
    return residency


def push_summary(deployment) -> Dict[str, object]:
    """Deployment-wide push-protocol verdict: the client-side
    hint/commit/waste tally (summed over drivers), the daemon-side
    execution totals, and the derived hit/waste ratios."""
    drivers = getattr(deployment, "drivers", [])
    daemons = getattr(deployment, "daemons", [])
    speculative = sum(d.stats.speculative_pushes for d in drivers)
    commits = sum(d.stats.push_commits for d in drivers)
    wasted = sum(d.stats.wasted_pushes for d in drivers)
    return {
        "speculative_pushes": speculative,
        "push_commits": commits,
        "wasted_pushes": wasted,
        "daemon_pushes": sum(d.gcf.stats.daemon_pushes for d in daemons),
        "push_bytes": sum(d.gcf.stats.push_bytes for d in daemons),
        "hit_ratio": (commits / speculative) if speculative else 0.0,
        "waste_ratio": (wasted / speculative) if speculative else 0.0,
    }


def _residency_line(per_state: Dict[str, int]) -> str:
    total = sum(per_state.values())
    resident = sum(
        count for letter, count in per_state.items() if letter != "I"
    )
    by_state = " ".join(
        f"{letter}={per_state[letter]}" for letter in sorted(per_state)
    )
    return f"{by_state} (valid {resident}/{total})"


def cachestat_text(deployment) -> str:
    """Render the build-cache state of every daemon in ``deployment``
    (a testbed ``Deployment`` or any iterable of daemons), plus — when
    given a deployment — per-daemon replica residency, push tallies and
    the deployment-wide push summary."""
    daemons: Iterable = getattr(deployment, "daemons", deployment)
    residency = replica_residency(deployment)
    clients = [drv.gcf.name for drv in getattr(deployment, "drivers", [])]
    lines: List[str] = []
    for daemon in daemons:
        stats = daemon.gcf.stats
        lines.append(f"Daemon {daemon.name}:")
        per_state = residency.get(daemon.name)
        if per_state:
            lines.append(f"  replicas: {_residency_line(per_state)}")
        staged = sum(daemon.staged_pushes(client) for client in clients)
        if stats.daemon_pushes or staged:
            lines.append(
                f"  pushes: executed={stats.daemon_pushes} "
                f"bytes={stats.push_bytes} staged_pending={staged}"
            )
        cache = daemon.buildcache
        if cache is None:
            lines.append("  build cache: disabled (program_cache=False)")
            lines.append("")
            continue
        lines.append(
            f"  build cache: {len(cache)}/{cache.capacity} entries, "
            f"{cache.evictions} evictions"
        )
        lines.append(
            f"  builds: compiled={stats.programs_built} "
            f"cache_hits={stats.build_cache_hits} "
            f"negative_hits={stats.negative_build_hits} "
            f"binaries_shipped={stats.binaries_shipped}"
        )
        lines.append(
            f"  hit ratio: {_hit_ratio(stats):.2f}  "
            f"build seconds saved: {stats.build_seconds_saved:.3f}"
        )
        entries = cache.entries()
        if entries:
            lines.append("  entries (LRU -> MRU):")
            lines.extend(_entry_line(entry) for entry in entries)
        else:
            lines.append("  entries: (empty)")
        lines.append("")
    client_row = residency.get("client")
    if client_row:
        lines.append(f"Client replicas: {_residency_line(client_row)}")
    if getattr(deployment, "drivers", []):
        summary = push_summary(deployment)
        lines.append(
            "Push summary: "
            f"speculative={summary['speculative_pushes']} "
            f"executed={summary['daemon_pushes']} "
            f"commits={summary['push_commits']} "
            f"wasted={summary['wasted_pushes']} "
            f"hit_ratio={summary['hit_ratio']:.2f} "
            f"waste_ratio={summary['waste_ratio']:.2f}"
        )
    return "\n".join(lines).rstrip("\n")


def _main() -> None:  # pragma: no cover - exercised via cachestat_text tests
    from repro.hw.cluster import make_ib_cpu_cluster
    from repro.testbed import deploy_dopencl

    source = """
    __kernel void scale(__global float *x, const float f, const int n) {
        int i = (int)get_global_id(0);
        if (i < n) x[i] = x[i] * f;
    }
    """
    deployment = deploy_dopencl(make_ib_cpu_cluster(2, n_clients=2), n_clients=2)
    for api in deployment.apis:
        devices = api.clGetDeviceIDs(api.clGetPlatformIDs()[0])
        ctx = api.clCreateContext(devices)
        queue = api.clCreateCommandQueue(ctx, devices[0])
        program = api.clCreateProgramWithSource(ctx, source)
        api.clBuildProgram(program)
        api.clFinish(queue)
    print(cachestat_text(deployment))


if __name__ == "__main__":  # pragma: no cover
    _main()
