"""A ``cachestat`` inspector for the per-daemon program build caches.

Renders, for every daemon of a deployment, the content-addressed build
cache (:mod:`repro.core.daemon.buildcache`): each entry's short source
digest, build options, kind (``binary`` / ``negative``), shipping size
and hit count, plus the daemon's build counters and the resulting
cache-hit ratio.  The first thing an operator runs when asking "is the
cluster really compiling each program once?".

Works against any object exposing ``daemons`` (a
:class:`~repro.testbed.Deployment`) or directly against an iterable of
daemons.  Run the demo CLI with ``python -m repro.tools.cachestat``: it
stands up a small cluster, has two tenants build the same source, and
dumps the caches.
"""

from __future__ import annotations

from typing import Iterable, List


def _hit_ratio(stats) -> float:
    """Cache answers per build resolution: ``(positive + negative hits)
    / (compiles + hits)``; 0.0 before any build was resolved."""
    hits = stats.build_cache_hits + stats.negative_build_hits
    total = stats.programs_built + hits
    return (hits / total) if total else 0.0


def _entry_line(entry) -> str:
    options = entry.options if entry.options else "(none)"
    return (
        f"    {entry.digest[:12]}  {entry.kind:<8} options={options:<16} "
        f"{entry.nbytes:>6} B  hits={entry.hits}"
    )


def cachestat_text(deployment) -> str:
    """Render the build-cache state of every daemon in ``deployment``
    (a testbed ``Deployment`` or any iterable of daemons)."""
    daemons: Iterable = getattr(deployment, "daemons", deployment)
    lines: List[str] = []
    for daemon in daemons:
        stats = daemon.gcf.stats
        lines.append(f"Daemon {daemon.name}:")
        cache = daemon.buildcache
        if cache is None:
            lines.append("  build cache: disabled (program_cache=False)")
            lines.append("")
            continue
        lines.append(
            f"  build cache: {len(cache)}/{cache.capacity} entries, "
            f"{cache.evictions} evictions"
        )
        lines.append(
            f"  builds: compiled={stats.programs_built} "
            f"cache_hits={stats.build_cache_hits} "
            f"negative_hits={stats.negative_build_hits} "
            f"binaries_shipped={stats.binaries_shipped}"
        )
        lines.append(
            f"  hit ratio: {_hit_ratio(stats):.2f}  "
            f"build seconds saved: {stats.build_seconds_saved:.3f}"
        )
        entries = cache.entries()
        if entries:
            lines.append("  entries (LRU -> MRU):")
            lines.extend(_entry_line(entry) for entry in entries)
        else:
            lines.append("  entries: (empty)")
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def _main() -> None:  # pragma: no cover - exercised via cachestat_text tests
    from repro.hw.cluster import make_ib_cpu_cluster
    from repro.testbed import deploy_dopencl

    source = """
    __kernel void scale(__global float *x, const float f, const int n) {
        int i = (int)get_global_id(0);
        if (i < n) x[i] = x[i] * f;
    }
    """
    deployment = deploy_dopencl(make_ib_cpu_cluster(2, n_clients=2), n_clients=2)
    for api in deployment.apis:
        devices = api.clGetDeviceIDs(api.clGetPlatformIDs()[0])
        ctx = api.clCreateContext(devices)
        queue = api.clCreateCommandQueue(ctx, devices[0])
        program = api.clCreateProgramWithSource(ctx, source)
        api.clBuildProgram(program)
        api.clFinish(queue)
    print(cachestat_text(deployment))


if __name__ == "__main__":  # pragma: no cover
    _main()
