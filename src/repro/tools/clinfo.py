"""A ``clinfo``-style inspector for any flat ``cl*`` API object.

Prints platforms and devices with their key properties — the first thing
a user runs against a new OpenCL installation.  Works identically against
the native runtime, a dOpenCL deployment, or an ICD loader that combines
them (everything that exposes the flat API surface).
"""

from __future__ import annotations

from typing import List

from repro.ocl.constants import (
    CL_DEVICE_TYPE_ACCELERATOR,
    CL_DEVICE_TYPE_ALL,
    CL_DEVICE_TYPE_CPU,
    CL_DEVICE_TYPE_GPU,
)
from repro.ocl.errors import CLError

_TYPE_NAMES = {
    CL_DEVICE_TYPE_CPU: "CPU",
    CL_DEVICE_TYPE_GPU: "GPU",
    CL_DEVICE_TYPE_ACCELERATOR: "ACCELERATOR",
}


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n / 1.0:.0f} {unit}"
        n /= 1024
    return f"{n} B"  # pragma: no cover


def clinfo_text(cl) -> str:
    """Render platform/device info for an API object."""
    lines: List[str] = []
    platforms = cl.clGetPlatformIDs()
    lines.append(f"Number of platforms: {len(platforms)}")
    for platform in platforms:
        lines.append("")
        lines.append(f"Platform Name:    {cl.clGetPlatformInfo(platform, 'NAME')}")
        lines.append(f"Platform Vendor:  {cl.clGetPlatformInfo(platform, 'VENDOR')}")
        lines.append(f"Platform Version: {cl.clGetPlatformInfo(platform, 'VERSION')}")
        try:
            devices = cl.clGetDeviceIDs(platform, CL_DEVICE_TYPE_ALL)
        except CLError:
            lines.append("  (no devices)")
            continue
        lines.append(f"  Number of devices: {len(devices)}")
        for i, dev in enumerate(devices):
            type_bits = cl.clGetDeviceInfo(dev, "TYPE")
            type_name = _TYPE_NAMES.get(type_bits, f"0x{type_bits:x}")
            lines.append(f"  Device #{i}: {cl.clGetDeviceInfo(dev, 'NAME')}")
            lines.append(f"    Type:            {type_name}")
            lines.append(f"    Vendor:          {cl.clGetDeviceInfo(dev, 'VENDOR')}")
            lines.append(f"    Compute units:   {cl.clGetDeviceInfo(dev, 'MAX_COMPUTE_UNITS')}")
            lines.append(f"    Clock:           {cl.clGetDeviceInfo(dev, 'MAX_CLOCK_FREQUENCY')} MHz")
            lines.append(f"    Global memory:   {_fmt_bytes(cl.clGetDeviceInfo(dev, 'GLOBAL_MEM_SIZE'))}")
            lines.append(f"    Local memory:    {_fmt_bytes(cl.clGetDeviceInfo(dev, 'LOCAL_MEM_SIZE'))}")
            lines.append(f"    Max alloc:       {_fmt_bytes(cl.clGetDeviceInfo(dev, 'MAX_MEM_ALLOC_SIZE'))}")
            lines.append(f"    Max work-group:  {cl.clGetDeviceInfo(dev, 'MAX_WORK_GROUP_SIZE')}")
            lines.append(f"    Available:       {cl.clGetDeviceInfo(dev, 'AVAILABLE')}")
            server = getattr(dev, "server", None)
            if server is not None:
                lines.append(f"    dOpenCL server:  {server.name}")
    return "\n".join(lines)
