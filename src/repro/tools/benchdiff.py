"""Benchmark regression checker: fresh smoke runs vs committed snapshots.

``BENCH_smoke.json``, ``BENCH_osem.json``, ``BENCH_multiclient.json``
and ``BENCH_stream.json`` (repo root) record the forwarding pipeline's
headline counters — round trips, wire bytes, cache hits, the
multi-tenant throughput/latency/fairness numbers and the
double-buffered streaming overlap periods.  The simulation is
deterministic, so those counters are exact properties of the code: any
drift is a real change, not noise.  This tool re-runs the smoke
benchmarks and *diffs* the fresh counters against the committed
snapshots, so a change that quietly costs round trips or bytes (or
quietly improves them without re-recording the snapshot) fails loudly
instead of rotting the perf floor.

Round-trip and cache-hit counters are compared exactly by default; byte
counters get a small relative tolerance (codec-level changes
legitimately move a few header bytes).  Both directions are violations:
*worse* means a regression, *better* means the committed snapshot is
stale and must be re-recorded
(``PYTHONPATH=src python -m pytest benchmarks/bench_smoke.py
benchmarks/bench_osem.py benchmarks/bench_multiclient.py
benchmarks/bench_stream.py`` rewrites all four).

Used two ways:

* tier-1: ``tests/test_bench_regression.py`` calls :func:`compare`
  against the committed files;
* CLI: ``PYTHONPATH=src python -m repro.tools.benchdiff`` (or
  ``tools/benchdiff.py``) prints a report per snapshot and exits
  non-zero on violations.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import REPO_ROOT

#: Compared keys -> relative tolerance.  Round trips are deterministic
#: integers (exact); byte counts tolerate small codec-level drift.  The
#: ``gather``/``mosi`` keys gate the download and peer-transfer
#: coalescing floors (the gathered mini Fig. 4, coalescing on vs off)
#: exactly like the upload keys always gated the plain workload; the
#: ``readback`` keys gate the result-read coalescing floor the same way
#: (the client-composed mini Fig. 4, ``coalesce_reads`` on vs off),
#: together with the fused-group and ``clFlush``-barrier counters.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "round_trips_sync": 0.0,
    "round_trips_pr1": 0.0,
    "round_trips_batched": 0.0,
    "round_trips_gather": 0.0,
    "round_trips_gather_uncoalesced": 0.0,
    "round_trips_mosi": 0.0,
    "round_trips_mosi_uncoalesced": 0.0,
    "round_trips_readback": 0.0,
    "round_trips_readback_uncoalesced": 0.0,
    "round_trips_readback_mosi": 0.0,
    "round_trips_readback_mosi_uncoalesced": 0.0,
    "coalesced_downloads": 0.0,
    "coalesced_peer_transfers": 0.0,
    "coalesced_reads": 0.0,
    "coalesced_read_sections": 0.0,
    "flush_barriers": 0.0,
    "bytes_sent_sync": 0.02,
    "bytes_sent_pr1": 0.02,
    "bytes_sent_batched": 0.02,
}

#: OSEM-snapshot keys -> relative tolerance (``BENCH_osem.json``): the
#: reply-cache payoff counters of the repeated-arg workload, the
#: program-build-cache floors (the cache-on/cache-off setup ablation
#: pair and the one-compile-per-cluster repeat-setup phase) and the
#: push-transfer floor (steady-state iteration round trips with
#: predictive pushes on vs the ``push_transfers=False`` ablation cell,
#: plus the commit/waste tally) — all exact properties of the
#: deterministic simulation.
OSEM_TOLERANCES: Dict[str, float] = {
    "setup_round_trips": 0.0,
    "setup_round_trips_cache_off": 0.0,
    "programs_built": 0.0,
    "iteration_round_trips": 0.0,
    "iteration_round_trips_push_off": 0.0,
    "push_commits": 0.0,
    "wasted_pushes": 0.0,
    "iteration_batched_commands": 0.0,
    "iteration_reply_cache_hits": 0.0,
    "iteration_decode_cache_hits": 0.0,
    "cluster_programs_built": 0.0,
    "cluster_binaries_shipped": 0.0,
    "cluster_build_cache_hits": 0.0,
}


def _multiclient_tolerances() -> Dict[str, float]:
    """Multiclient-snapshot keys -> tolerance: every per-scale headline
    number (throughput, p99 sync latency, device-group fairness ratio,
    shared decode-cache hits and the one-compile-per-fleet build-cache
    counters at 1/8/64/256 tenants) is an exact property of the
    deterministic simulation, so all keys gate at 0.0."""
    from repro.bench.multiclient import SCALES

    keys = {}
    for n in SCALES:
        keys[f"throughput_{n}"] = 0.0
        keys[f"p99_sync_latency_{n}"] = 0.0
        keys[f"fairness_ratio_{n}"] = 0.0
        keys[f"decode_cache_hits_{n}"] = 0.0
        keys[f"programs_built_{n}"] = 0.0
        keys[f"build_cache_hits_{n}"] = 0.0
    return keys


#: See :func:`_multiclient_tolerances` (``BENCH_multiclient.json``).
MULTICLIENT_TOLERANCES: Dict[str, float] = _multiclient_tolerances()

#: Stream-snapshot keys -> relative tolerance (``BENCH_stream.json``):
#: the double-buffered deferred-read overlap numbers.  The round-trip
#: and deferred-read counters are exact; the virtual-time periods get a
#: small relative tolerance (legitimate codec/header-size changes move
#: wire durations by fractions of a percent) and the derived
#: pipelined:serial ratio a slightly wider one.
STREAM_TOLERANCES: Dict[str, float] = {
    "steady_period_pipelined": 0.02,
    "steady_period_serial": 0.02,
    "steady_period_compute_only": 0.02,
    "transfer_period": 0.05,
    "makespan_pipelined": 0.02,
    "makespan_serial": 0.02,
    "pipelined_ratio": 0.05,
    "round_trips_pipelined": 0.0,
    "round_trips_serial": 0.0,
    "deferred_reads": 0.0,
    "deferred_read_batches": 0.0,
}

COMMITTED_PATH = os.path.join(REPO_ROOT, "BENCH_smoke.json")
OSEM_COMMITTED_PATH = os.path.join(REPO_ROOT, "BENCH_osem.json")
MULTICLIENT_COMMITTED_PATH = os.path.join(REPO_ROOT, "BENCH_multiclient.json")
STREAM_COMMITTED_PATH = os.path.join(REPO_ROOT, "BENCH_stream.json")


def load_committed(path: Optional[str] = None) -> Dict[str, object]:
    """The committed benchmark snapshot (``BENCH_smoke.json``)."""
    with open(path or COMMITTED_PATH) as fh:
        return json.load(fh)


def compare(
    fresh: Dict[str, object],
    committed: Dict[str, object],
    tolerances: Optional[Dict[str, float]] = None,
    snapshot: str = "BENCH_smoke.json",
) -> List[str]:
    """Diff a fresh smoke payload against the committed snapshot.

    Returns human-readable violation strings (empty list = clean); each
    names ``snapshot`` so the remedy points at the right file.  A key
    is violated when the fresh value differs from the committed one by
    more than ``tolerance * committed`` in *either* direction — higher
    is a perf regression, lower is a stale snapshot (see module
    docstring).  A compared key missing from either payload is itself a
    violation: silently skipping it would let the floor rot."""
    problems: List[str] = []
    for key, tolerance in (tolerances or DEFAULT_TOLERANCES).items():
        if key not in committed:
            problems.append(
                f"{key}: missing from committed {snapshot} (re-record it)"
            )
            continue
        if key not in fresh:
            problems.append(f"{key}: missing from fresh run payload")
            continue
        want = float(committed[key])
        got = float(fresh[key])
        allowed = abs(want) * tolerance
        if abs(got - want) <= allowed:
            continue
        direction = "regressed" if got > want else "improved"
        problems.append(
            f"{key}: {direction} — fresh {got:g} vs committed {want:g} "
            f"(tolerance ±{tolerance:.0%}); "
            + (
                f"fix the regression or re-record {snapshot}"
                if got > want
                else f"re-record {snapshot} to bank the improvement"
            )
        )
    return problems


def run_fresh() -> Dict[str, object]:
    """Run the smoke benchmark and return its headline payload."""
    from repro.bench.smoke import bench_smoke, smoke_payload

    return smoke_payload(bench_smoke())


def run_fresh_osem() -> Dict[str, object]:
    """Run the OSEM benchmark and return its headline payload (the dict
    :func:`repro.bench.osem.save_osem_json` would write)."""
    from repro.bench.osem import bench_osem, osem_payload

    return osem_payload(bench_osem())


def run_fresh_multiclient() -> Dict[str, object]:
    """Run the multi-tenant contention sweep and return its headline
    payload (the dict :func:`repro.bench.multiclient.save_multiclient_json`
    would write)."""
    from repro.bench.multiclient import bench_multiclient, multiclient_payload

    return multiclient_payload(bench_multiclient())


def run_fresh_stream() -> Dict[str, object]:
    """Run the streaming overlap benchmark and return its headline
    payload (the dict :func:`repro.bench.stream.save_stream_json`
    would write)."""
    from repro.bench.stream import bench_stream, stream_payload

    return stream_payload(bench_stream())


def format_report(
    fresh: Dict[str, object],
    committed: Dict[str, object],
    problems: List[str],
    title: str = "BENCH_smoke.json",
    tolerances: Optional[Dict[str, float]] = None,
) -> str:
    """A human-readable diff table plus the verdict."""
    lines = [f"benchdiff: fresh run vs committed {title}", ""]
    lines.append(f"{'key':28} {'committed':>12} {'fresh':>12}")
    for key in tolerances or DEFAULT_TOLERANCES:
        lines.append(
            f"{key:28} {str(committed.get(key, '?')):>12} {str(fresh.get(key, '?')):>12}"
        )
    lines.append("")
    if problems:
        lines.append("VIOLATIONS:")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append("OK: counters match the committed snapshot.")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--committed",
        default=COMMITTED_PATH,
        help="path of the committed smoke snapshot (default: repo-root BENCH_smoke.json)",
    )
    parser.add_argument(
        "--committed-osem",
        default=OSEM_COMMITTED_PATH,
        help="path of the committed OSEM snapshot (default: repo-root BENCH_osem.json)",
    )
    parser.add_argument(
        "--committed-multiclient",
        default=MULTICLIENT_COMMITTED_PATH,
        help=(
            "path of the committed multi-tenant snapshot "
            "(default: repo-root BENCH_multiclient.json)"
        ),
    )
    parser.add_argument(
        "--committed-stream",
        default=STREAM_COMMITTED_PATH,
        help=(
            "path of the committed streaming-overlap snapshot "
            "(default: repo-root BENCH_stream.json)"
        ),
    )
    args = parser.parse_args(argv)
    failed = False
    for title, path, tolerances, runner in (
        ("BENCH_smoke.json", args.committed, DEFAULT_TOLERANCES, run_fresh),
        ("BENCH_osem.json", args.committed_osem, OSEM_TOLERANCES, run_fresh_osem),
        (
            "BENCH_multiclient.json",
            args.committed_multiclient,
            MULTICLIENT_TOLERANCES,
            run_fresh_multiclient,
        ),
        (
            "BENCH_stream.json",
            args.committed_stream,
            STREAM_TOLERANCES,
            run_fresh_stream,
        ),
    ):
        committed = load_committed(path)
        fresh = runner()
        problems = compare(fresh, committed, tolerances, snapshot=title)
        print(format_report(fresh, committed, problems, title, tolerances))
        print()
        failed = failed or bool(problems)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
