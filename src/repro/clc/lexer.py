"""Tokenizer for the OpenCL C subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.clc.errors import CLCompileError

KEYWORDS = frozenset(
    """
    void bool char uchar short ushort int uint long ulong float double size_t
    ptrdiff_t unsigned signed const volatile restrict
    if else while for do break continue return
    __kernel kernel __global global __local local __constant constant
    __private private struct typedef sizeof true false
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ",", ";", "(", ")", "{", "}", "[", "]", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<float>
        (?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
        [fF]?
      | \d+\.[fF]
      | \d+[fF]          # 1f
    )
  | (?P<hex>0[xX][0-9a-fA-F]+[uUlL]*)
  | (?P<int>\d+[uUlL]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "int" | "float" | "op" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize preprocessed source; raises :class:`CLCompileError` on
    unknown characters."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        m = _TOKEN_RE.match(source, i)
        if m:
            text = m.group(0)
            kind = m.lastgroup
            if kind == "nl":
                line += 1
                col = 1
                i = m.end()
                continue
            if kind == "ws":
                col += len(text)
                i = m.end()
                continue
            if kind == "ident":
                tok_kind = "keyword" if text in KEYWORDS else "ident"
                tokens.append(Token(tok_kind, text, line, col))
            elif kind in ("int", "hex"):
                tokens.append(Token("int", text, line, col))
            elif kind == "float":
                tokens.append(Token("float", text, line, col))
            col += len(text)
            i = m.end()
            continue
        # operators — maximal munch
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                col += len(op)
                i += len(op)
                break
        else:
            raise CLCompileError(f"unexpected character {source[i]!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
