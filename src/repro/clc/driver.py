"""Compiler driver: source + options -> compiled kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.clc.codegen import compile_module
from repro.clc.errors import CLCompileError
from repro.clc.parser import parse
from repro.clc.preprocess import preprocess
from repro.clc.sema import AnalyzedProgram, FunctionInfo, analyze

#: Macros every OpenCL C translation unit sees.
PREDEFINED_MACROS = {
    "__OPENCL_VERSION__": "110",
    "CL_VERSION_1_0": "100",
    "CL_VERSION_1_1": "110",
    "CLK_LOCAL_MEM_FENCE": "1",
    "CLK_GLOBAL_MEM_FENCE": "2",
    "M_PI": "3.141592653589793",
    "M_PI_F": "3.1415927f",
    "M_E_F": "2.7182817f",
    "FLT_MAX": "3.402823466e+38f",
    "FLT_MIN": "1.175494351e-38f",
    "FLT_EPSILON": "1.192092896e-07f",
    "MAXFLOAT": "3.402823466e+38f",
    "INT_MAX": "2147483647",
    "INT_MIN": "(-2147483647 - 1)",
    "UINT_MAX": "4294967295u",
}


@dataclass
class CompiledKernel:
    """One ``__kernel`` function ready for dispatch."""

    name: str
    info: FunctionInfo
    vector_fn: Callable
    program: "CompiledProgram" = field(repr=False, default=None)

    @property
    def num_args(self) -> int:
        return len(self.info.param_symbols)

    @property
    def arg_kinds(self):
        return self.info.arg_kinds


@dataclass
class CompiledProgram:
    """A built OpenCL C program."""

    source: str
    options: str
    analyzed: AnalyzedProgram = field(repr=False, default=None)
    kernels: Dict[str, CompiledKernel] = field(default_factory=dict)
    python_source: str = field(repr=False, default="")
    build_log: str = ""

    def kernel(self, name: str) -> CompiledKernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise CLCompileError(f"no kernel named {name!r} in program") from None


def compile_program(source: str, options: str = "") -> CompiledProgram:
    """Compile OpenCL C source; raises :class:`CLCompileError` on failure.

    The OpenCL runtime layer converts failures into
    ``CL_BUILD_PROGRAM_FAILURE`` with the exception text as the build log.
    """
    prelude_defs = "".join(
        f"#define {name} {value}\n" for name, value in PREDEFINED_MACROS.items()
    )
    # Prepend predefined macros, then compensate line numbers by stripping
    # the prelude's newlines after preprocessing (the preprocessor keeps
    # line structure stable).
    expanded = preprocess(prelude_defs + source, options)
    expanded = "\n".join(expanded.split("\n")[len(PREDEFINED_MACROS) :])
    program_ast = parse(expanded)
    analyzed = analyze(program_ast)
    namespace = compile_module(analyzed)
    program = CompiledProgram(
        source=source,
        options=options,
        analyzed=analyzed,
        python_source=namespace["__clc_source__"],
        build_log="",
    )
    for name, info in analyzed.kernels.items():
        program.kernels[name] = CompiledKernel(
            name=name,
            info=info,
            vector_fn=namespace[f"_fn_{name}"],
            program=program,
        )
    return program
