"""Compiler driver: source + options -> compiled kernels.

Also the home of the *program binary* format: a built
:class:`CompiledProgram` round-trips through
:func:`serialize_program` / :func:`deserialize_program`, carrying the
generated Python module plus the kernels' parameter symbols — enough to
re-create dispatchable kernels without running the compiler front-end
(preprocess / parse / analyze / codegen).  This is what the daemon
build cache ships between cluster nodes and what
``clGetProgramInfo(CL_PROGRAM_BINARIES)`` hands to applications.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.clc.codegen import compile_module
from repro.clc.errors import CLCompileError
from repro.clc.parser import parse
from repro.clc.preprocess import preprocess
from repro.clc.sema import AnalyzedProgram, FunctionInfo, Symbol, analyze
from repro.clc.types import VOID, PointerType, ScalarType

#: Macros every OpenCL C translation unit sees.
PREDEFINED_MACROS = {
    "__OPENCL_VERSION__": "110",
    "CL_VERSION_1_0": "100",
    "CL_VERSION_1_1": "110",
    "CLK_LOCAL_MEM_FENCE": "1",
    "CLK_GLOBAL_MEM_FENCE": "2",
    "M_PI": "3.141592653589793",
    "M_PI_F": "3.1415927f",
    "M_E_F": "2.7182817f",
    "FLT_MAX": "3.402823466e+38f",
    "FLT_MIN": "1.175494351e-38f",
    "FLT_EPSILON": "1.192092896e-07f",
    "MAXFLOAT": "3.402823466e+38f",
    "INT_MAX": "2147483647",
    "INT_MIN": "(-2147483647 - 1)",
    "UINT_MAX": "4294967295u",
}


@dataclass
class CompiledKernel:
    """One ``__kernel`` function ready for dispatch."""

    name: str
    info: FunctionInfo
    vector_fn: Callable
    program: "CompiledProgram" = field(repr=False, default=None)

    @property
    def num_args(self) -> int:
        return len(self.info.param_symbols)

    @property
    def arg_kinds(self):
        return self.info.arg_kinds


@dataclass
class CompiledProgram:
    """A built OpenCL C program."""

    source: str
    options: str
    analyzed: AnalyzedProgram = field(repr=False, default=None)
    kernels: Dict[str, CompiledKernel] = field(default_factory=dict)
    python_source: str = field(repr=False, default="")
    build_log: str = ""

    def kernel(self, name: str) -> CompiledKernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise CLCompileError(f"no kernel named {name!r} in program") from None


def compile_program(source: str, options: str = "") -> CompiledProgram:
    """Compile OpenCL C source; raises :class:`CLCompileError` on failure.

    The OpenCL runtime layer converts failures into
    ``CL_BUILD_PROGRAM_FAILURE`` with the exception text as the build log.
    """
    prelude_defs = "".join(
        f"#define {name} {value}\n" for name, value in PREDEFINED_MACROS.items()
    )
    # Prepend predefined macros, then compensate line numbers by stripping
    # the prelude's newlines after preprocessing (the preprocessor keeps
    # line structure stable).
    expanded = preprocess(prelude_defs + source, options)
    expanded = "\n".join(expanded.split("\n")[len(PREDEFINED_MACROS) :])
    program_ast = parse(expanded)
    analyzed = analyze(program_ast)
    namespace = compile_module(analyzed)
    program = CompiledProgram(
        source=source,
        options=options,
        analyzed=analyzed,
        python_source=namespace["__clc_source__"],
        build_log="",
    )
    for name, info in analyzed.kernels.items():
        program.kernels[name] = CompiledKernel(
            name=name,
            info=info,
            vector_fn=namespace[f"_fn_{name}"],
            program=program,
        )
    return program


# ----------------------------------------------------------------------
# content addressing + binary round-trip
# ----------------------------------------------------------------------
#: Format tag of the serialized-program container; bumped whenever the
#: payload layout changes so stale binaries fail loudly instead of
#: executing garbage.
BINARY_MAGIC = "CLCB1"


def program_digest(source: str) -> str:
    """Content address of a translation unit: ``sha256(source)`` hex.

    The compiler is deterministic, so ``(program_digest(source),
    options)`` fully determines the build outcome — the key of every
    level of the build cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def kernel_arg_metadata(program: CompiledProgram) -> Dict[str, Dict[str, object]]:
    """Argument metadata for every kernel of a built program.

    This is the payload of ``BuildProgramResponse.kernels`` *and* what a
    client resolves locally on a build-cache hit: ``num_args`` /
    ``arg_kinds`` / ``arg_types`` per kernel, plus the indexes of
    writable global-buffer arguments (coherence planning)."""
    out: Dict[str, Dict[str, object]] = {}
    for name, compiled in program.kernels.items():
        writable = [
            i
            for i, sym in enumerate(compiled.info.param_symbols)
            if isinstance(sym.type, PointerType)
            and sym.type.address_space == "global"
            and not sym.is_const
        ]
        out[name] = {
            "num_args": compiled.num_args,
            "arg_kinds": list(compiled.arg_kinds),
            "arg_types": [str(sym.type) for sym in compiled.info.param_symbols],
            "writable_buffer_args": writable,
        }
    return out


def _encode_type(t: object) -> Dict[str, object]:
    if isinstance(t, PointerType):
        return {
            "kind": "pointer",
            "address_space": t.address_space,
            "pointee": _encode_type(t.pointee),
        }
    if isinstance(t, ScalarType):
        return {
            "kind": "scalar",
            "name": t.name,
            "dtype": t.dtype,
            "rank": t.rank,
            "is_float": t.is_float,
            "signed": t.signed,
        }
    return {"kind": "void"}


def _decode_type(doc: Dict[str, object]) -> object:
    kind = doc.get("kind")
    if kind == "pointer":
        return PointerType(_decode_type(doc["pointee"]), str(doc["address_space"]))
    if kind == "scalar":
        return ScalarType(
            str(doc["name"]),
            str(doc["dtype"]),
            int(doc["rank"]),
            bool(doc["is_float"]),
            bool(doc["signed"]),
        )
    return VOID


def _encode_symbol(sym: Symbol) -> Dict[str, object]:
    return {
        "name": sym.name,
        "slot": sym.slot,
        "kind": sym.kind,
        "address_space": sym.address_space,
        "is_const": sym.is_const,
        "array_size": sym.array_size,
        "type": _encode_type(sym.type),
    }


def _decode_symbol(doc: Dict[str, object]) -> Symbol:
    return Symbol(
        name=str(doc["name"]),
        slot=str(doc["slot"]),
        type=_decode_type(doc["type"]),
        kind=str(doc["kind"]),
        address_space=str(doc["address_space"]),
        is_const=bool(doc["is_const"]),
        array_size=doc["array_size"],
    )


def serialize_program(program: CompiledProgram) -> bytes:
    """A built program as a self-contained binary blob.

    Carries the original source (the content address), build options,
    the *generated Python module* and the per-kernel parameter symbols —
    everything :func:`deserialize_program` needs to rebuild dispatchable
    kernels without the compiler front-end.  The blob is deterministic
    (sorted keys), so identical builds serialize identically on every
    daemon."""
    kernels = [
        {
            "name": kernel.name,
            "params": [_encode_symbol(sym) for sym in kernel.info.param_symbols],
        }
        for _, kernel in sorted(program.kernels.items())
    ]
    doc = {
        "magic": BINARY_MAGIC,
        "source": program.source,
        "options": program.options,
        "python_source": program.python_source,
        "build_log": program.build_log,
        "kernels": kernels,
    }
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def deserialize_program(blob: bytes) -> CompiledProgram:
    """Rebuild a :class:`CompiledProgram` from :func:`serialize_program`
    output, skipping the compiler front-end entirely: the generated
    Python module is ``exec``'d (it is self-contained, see
    :data:`repro.clc.codegen.MODULE_PRELUDE`) and the kernels are
    re-assembled from the serialized parameter symbols.

    The rebuilt kernels carry no AST (``info.node is None`` and
    ``analyzed is None``), so they dispatch through the vector backend
    only — the interpreter backend needs the source and can recompile
    from ``program.source`` if ever required.  Raises
    :class:`CLCompileError` on a malformed or wrong-format blob."""
    try:
        doc = json.loads(bytes(blob).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CLCompileError(f"invalid program binary: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("magic") != BINARY_MAGIC:
        raise CLCompileError("invalid program binary: bad magic")
    namespace: Dict[str, object] = {}
    code = compile(doc["python_source"], "<clc-binary>", "exec")
    exec(code, namespace)
    program = CompiledProgram(
        source=doc["source"],
        options=doc.get("options", ""),
        analyzed=None,
        python_source=doc["python_source"],
        build_log=doc.get("build_log", ""),
    )
    for entry in doc["kernels"]:
        name = str(entry["name"])
        params = [_decode_symbol(p) for p in entry["params"]]
        info = FunctionInfo(
            name=name,
            node=None,
            return_type=VOID,
            param_symbols=params,
            is_kernel=True,
        )
        program.kernels[name] = CompiledKernel(
            name=name,
            info=info,
            vector_fn=namespace[f"_fn_{name}"],
            program=program,
        )
    return program
