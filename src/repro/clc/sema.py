"""Semantic analysis: scopes, C-style typing, implicit conversions.

Annotates the AST in place:

* every expression node gets ``.type``;
* every :class:`~repro.clc.cast.VarRef` / ``VarDecl`` gets ``.symbol``;
* :class:`~repro.clc.cast.Call` nodes get ``.builtin`` (a
  :class:`~repro.clc.builtins.BuiltinCall`), ``.func`` (a
  :class:`FunctionInfo`) or ``.convert_type``;
* :class:`~repro.clc.cast.ImplicitCast` nodes are inserted wherever C's
  conversion rules demand one, so the backends never re-derive typing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.clc import cast as A
from repro.clc.builtins import BuiltinCall, is_builtin, resolve_builtin
from repro.clc.errors import CLCompileError
from repro.clc.types import (
    BOOL,
    INT,
    LONG,
    PointerType,
    SCALAR_TYPES,
    ScalarType,
    VOID,
    VoidType,
    integer_promote,
    usual_arithmetic_conversions,
)

_CONVERT_RE = re.compile(r"convert_([a-z]+)(?:_sat)?(?:_rt[ezpn])?$")


@dataclass
class Symbol:
    name: str
    slot: str  # unique python-level name
    type: object  # ScalarType or PointerType (arrays decay to pointers)
    kind: str  # "param" | "var" | "array"
    address_space: str = "private"
    is_const: bool = False
    array_size: Optional[int] = None


@dataclass
class FunctionInfo:
    name: str
    node: A.FuncDef
    return_type: object
    param_symbols: List[Symbol] = field(default_factory=list)
    arrays: List[Symbol] = field(default_factory=list)  # declared local/private arrays
    is_kernel: bool = False
    callees: Set[str] = field(default_factory=set)

    @property
    def arg_kinds(self) -> List[str]:
        """Kernel argument classification for clSetKernelArg:
        "buffer" (global/constant pointer), "local" (local pointer),
        or "value" (scalar)."""
        kinds = []
        for sym in self.param_symbols:
            if isinstance(sym.type, PointerType):
                kinds.append("local" if sym.type.address_space == "local" else "buffer")
            else:
                kinds.append("value")
        return kinds


@dataclass
class AnalyzedProgram:
    program: A.Program
    functions: Dict[str, FunctionInfo]
    kernels: Dict[str, FunctionInfo]


class Scope:
    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, sym: Symbol, node: A.Node) -> None:
        if sym.name in self.names:
            raise CLCompileError(f"redeclaration of {sym.name!r}", node.line, node.col)
        self.names[sym.name] = sym


class SemanticAnalyzer:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.functions: Dict[str, FunctionInfo] = {}
        self._slot_counter = 0
        self._current: Optional[FunctionInfo] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------
    def analyze(self) -> AnalyzedProgram:
        # Pass 1: signatures (allows forward references).
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise CLCompileError(f"redefinition of function {fn.name!r}", fn.line, fn.col)
            if is_builtin(fn.name) or _CONVERT_RE.match(fn.name):
                raise CLCompileError(
                    f"cannot redefine builtin function {fn.name!r}", fn.line, fn.col
                )
            if fn.is_kernel and not isinstance(fn.return_type, VoidType):
                raise CLCompileError(
                    f"kernel {fn.name!r} must return void", fn.line, fn.col
                )
            info = FunctionInfo(fn.name, fn, fn.return_type, is_kernel=fn.is_kernel)
            for p in fn.params:
                if not p.name:
                    raise CLCompileError(
                        f"unnamed parameter in function {fn.name!r}", fn.line, fn.col
                    )
                space = p.param_type.address_space if isinstance(p.param_type, PointerType) else "private"
                if fn.is_kernel and isinstance(p.param_type, PointerType) and space == "private":
                    raise CLCompileError(
                        f"kernel argument {p.name!r} cannot be a private pointer", p.line, p.col
                    )
                sym = Symbol(
                    name=p.name,
                    slot=self._new_slot(p.name),
                    type=p.param_type,
                    kind="param",
                    address_space=space,
                    is_const=p.is_const or space == "constant",
                )
                p.symbol = sym  # type: ignore[attr-defined]
                info.param_symbols.append(sym)
            self.functions[fn.name] = info
        # Pass 2: bodies.
        for fn in self.program.functions:
            self._analyze_function(self.functions[fn.name])
        self._check_no_recursion()
        kernels = {n: f for n, f in self.functions.items() if f.is_kernel}
        return AnalyzedProgram(self.program, self.functions, kernels)

    def _new_slot(self, name: str) -> str:
        self._slot_counter += 1
        return f"{name}_{self._slot_counter}"

    def _check_no_recursion(self) -> None:
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, chain: List[str]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(chain + [name])
                node = self.functions[name].node
                raise CLCompileError(f"recursion is not allowed in OpenCL C: {cycle}", node.line, node.col)
            state[name] = 0
            for callee in self.functions[name].callees:
                visit(callee, chain + [name])
            state[name] = 1

        for name in self.functions:
            visit(name, [])

    # ------------------------------------------------------------------
    def _analyze_function(self, info: FunctionInfo) -> None:
        self._current = info
        scope = Scope()
        for sym in info.param_symbols:
            scope.declare(sym, info.node)
        self._visit_block(info.node.body, Scope(scope))
        self._current = None

    # -- statements -------------------------------------------------------
    def _visit_block(self, block: A.Block, scope: Scope) -> None:
        for i, stmt in enumerate(block.stmts):
            block.stmts[i] = self._visit_stmt(stmt, scope)

    def _visit_stmt(self, stmt: A.Stmt, scope: Scope) -> A.Stmt:
        if isinstance(stmt, A.Block):
            self._visit_block(stmt, Scope(scope))
            return stmt
        if isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                self._visit_decl(decl, scope)
            return stmt
        if isinstance(stmt, A.ExprStmt):
            stmt.expr = self._visit_expr(stmt.expr, scope)
            return stmt
        if isinstance(stmt, A.If):
            stmt.cond = self._coerce(self._visit_expr(stmt.cond, scope), BOOL)
            self._visit_block(stmt.then, Scope(scope))
            if stmt.els is not None:
                self._visit_block(stmt.els, Scope(scope))
            return stmt
        if isinstance(stmt, A.While):
            stmt.cond = self._coerce(self._visit_expr(stmt.cond, scope), BOOL)
            self._loop_depth += 1
            self._visit_block(stmt.body, Scope(scope))
            self._loop_depth -= 1
            return stmt
        if isinstance(stmt, A.DoWhile):
            self._loop_depth += 1
            self._visit_block(stmt.body, Scope(scope))
            self._loop_depth -= 1
            stmt.cond = self._coerce(self._visit_expr(stmt.cond, scope), BOOL)
            return stmt
        if isinstance(stmt, A.For):
            inner = Scope(scope)
            if stmt.init is not None:
                stmt.init = self._visit_stmt(stmt.init, inner)
            if stmt.cond is not None:
                stmt.cond = self._coerce(self._visit_expr(stmt.cond, inner), BOOL)
            if stmt.step is not None:
                stmt.step = self._visit_expr(stmt.step, inner)
            self._loop_depth += 1
            self._visit_block(stmt.body, Scope(inner))
            self._loop_depth -= 1
            return stmt
        if isinstance(stmt, (A.Break, A.Continue)):
            if self._loop_depth == 0:
                word = "break" if isinstance(stmt, A.Break) else "continue"
                raise CLCompileError(f"{word} outside of a loop", stmt.line, stmt.col)
            return stmt
        if isinstance(stmt, A.Return):
            ret = self._current.return_type
            if isinstance(ret, VoidType):
                if stmt.value is not None:
                    raise CLCompileError("void function cannot return a value", stmt.line, stmt.col)
            else:
                if stmt.value is None:
                    raise CLCompileError(
                        f"function returning {ret} needs a return value", stmt.line, stmt.col
                    )
                stmt.value = self._coerce(self._visit_expr(stmt.value, scope), ret)
            return stmt
        raise CLCompileError(f"unhandled statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _visit_decl(self, decl: A.VarDecl, scope: Scope) -> None:
        var_type = decl.var_type
        if decl.array_size is not None:
            if isinstance(var_type, PointerType):
                raise CLCompileError("arrays of pointers are not supported", decl.line, decl.col)
            if decl.address_space == "constant":
                raise CLCompileError("constant arrays inside functions are not supported", decl.line, decl.col)
            if decl.init is not None:
                raise CLCompileError("array initialisers are not supported", decl.line, decl.col)
            sym = Symbol(
                name=decl.name,
                slot=self._new_slot(decl.name),
                type=PointerType(var_type, decl.address_space),
                kind="array",
                address_space=decl.address_space,
                is_const=decl.is_const,
                array_size=decl.array_size,
            )
            self._current.arrays.append(sym)
        else:
            if isinstance(var_type, PointerType):
                if decl.init is None:
                    raise CLCompileError(
                        f"pointer variable {decl.name!r} needs an initialiser", decl.line, decl.col
                    )
            if decl.address_space == "local":
                raise CLCompileError(
                    "__local scalars are not supported (use a 1-element array)", decl.line, decl.col
                )
            sym = Symbol(
                name=decl.name,
                slot=self._new_slot(decl.name),
                type=var_type,
                kind="var",
                address_space=decl.address_space,
                is_const=decl.is_const,
            )
            if decl.init is not None:
                init = self._visit_expr(decl.init, scope)
                if isinstance(var_type, PointerType):
                    if not isinstance(init.type, PointerType) or init.type.pointee != var_type.pointee:
                        raise CLCompileError(
                            f"cannot initialise {var_type} from {init.type}", decl.line, decl.col
                        )
                    decl.init = init
                else:
                    decl.init = self._coerce(init, var_type)
        decl.symbol = sym  # type: ignore[attr-defined]
        scope.declare(sym, decl)

    # -- expressions ------------------------------------------------------
    def _coerce(self, expr: A.Expr, to_type: object) -> A.Expr:
        if expr.type == to_type:
            return expr
        if isinstance(expr.type, PointerType) or isinstance(to_type, PointerType):
            raise CLCompileError(
                f"cannot convert {expr.type} to {to_type}", expr.line, expr.col
            )
        cast = A.ImplicitCast(target_type=to_type, expr=expr, line=expr.line, col=expr.col)
        cast.type = to_type  # type: ignore[attr-defined]
        return cast

    def _visit_expr(self, expr: A.Expr, scope: Scope) -> A.Expr:
        method = getattr(self, f"_visit_{type(expr).__name__}", None)
        if method is None:
            raise CLCompileError(f"unhandled expression {type(expr).__name__}", expr.line, expr.col)
        result = method(expr, scope)
        if not hasattr(result, "type"):
            raise CLCompileError(
                f"internal: no type derived for {type(expr).__name__}", expr.line, expr.col
            )
        return result

    def _visit_IntLiteral(self, expr: A.IntLiteral, scope: Scope) -> A.Expr:
        if expr.explicit_type is not None:
            expr.type = expr.explicit_type
        elif expr.value > 2**31 - 1:
            expr.type = LONG
        else:
            expr.type = INT
        return expr

    def _visit_FloatLiteral(self, expr: A.FloatLiteral, scope: Scope) -> A.Expr:
        expr.type = expr.explicit_type
        return expr

    def _visit_BoolLiteral(self, expr: A.BoolLiteral, scope: Scope) -> A.Expr:
        expr.type = BOOL
        return expr

    def _visit_VarRef(self, expr: A.VarRef, scope: Scope) -> A.Expr:
        sym = scope.lookup(expr.name)
        if sym is None:
            raise CLCompileError(f"use of undeclared identifier {expr.name!r}", expr.line, expr.col)
        expr.symbol = sym  # type: ignore[attr-defined]
        expr.type = sym.type
        return expr

    def _visit_UnaryOp(self, expr: A.UnaryOp, scope: Scope) -> A.Expr:
        expr.operand = self._visit_expr(expr.operand, scope)
        t = expr.operand.type
        if expr.op == "&":
            if not isinstance(expr.operand, A.Index):
                raise CLCompileError(
                    "address-of is only supported on buffer elements (&buf[i])",
                    expr.line,
                    expr.col,
                )
            base_t = expr.operand.base.type
            expr.type = PointerType(expr.operand.type, base_t.address_space)
            return expr
        if expr.op in ("++", "--"):
            self._require_lvalue(expr.operand)
            if not isinstance(t, ScalarType):
                raise CLCompileError(f"{expr.op} needs a scalar operand", expr.line, expr.col)
            expr.type = t
            return expr
        if not isinstance(t, ScalarType):
            raise CLCompileError(f"unary {expr.op} needs a scalar operand, got {t}", expr.line, expr.col)
        if expr.op == "!":
            expr.operand = self._coerce(expr.operand, BOOL)
            expr.type = BOOL  # C says int; BOOL promotes to int when used
            return expr
        if expr.op == "~":
            if t.is_float:
                raise CLCompileError("~ needs an integer operand", expr.line, expr.col)
            promoted = integer_promote(t)
            expr.operand = self._coerce(expr.operand, promoted)
            expr.type = promoted
            return expr
        # unary + / -
        promoted = integer_promote(t) if t.is_integer else t
        expr.operand = self._coerce(expr.operand, promoted)
        expr.type = promoted
        return expr

    def _visit_PostfixOp(self, expr: A.PostfixOp, scope: Scope) -> A.Expr:
        expr.operand = self._visit_expr(expr.operand, scope)
        self._require_lvalue(expr.operand)
        t = expr.operand.type
        if not isinstance(t, ScalarType):
            raise CLCompileError(f"{expr.op} needs a scalar operand", expr.line, expr.col)
        expr.type = t
        return expr

    def _require_lvalue(self, expr: A.Expr) -> None:
        if isinstance(expr, A.VarRef):
            sym = expr.symbol
            if sym.is_const:
                raise CLCompileError(f"cannot modify const {sym.name!r}", expr.line, expr.col)
            if sym.kind == "array":
                raise CLCompileError(f"cannot assign to array {sym.name!r}", expr.line, expr.col)
            return
        if isinstance(expr, A.Index):
            base_t = expr.base.type
            if isinstance(base_t, PointerType) and base_t.address_space == "constant":
                raise CLCompileError("cannot write through a __constant pointer", expr.line, expr.col)
            return
        raise CLCompileError("expression is not assignable", expr.line, expr.col)

    def _visit_BinaryOp(self, expr: A.BinaryOp, scope: Scope) -> A.Expr:
        if expr.op == ",":
            expr.lhs = self._visit_expr(expr.lhs, scope)
            expr.rhs = self._visit_expr(expr.rhs, scope)
            expr.type = expr.rhs.type
            return expr
        expr.lhs = self._visit_expr(expr.lhs, scope)
        expr.rhs = self._visit_expr(expr.rhs, scope)
        lt, rt = expr.lhs.type, expr.rhs.type
        if expr.op in ("&&", "||"):
            expr.lhs = self._coerce(expr.lhs, BOOL)
            expr.rhs = self._coerce(expr.rhs, BOOL)
            expr.type = BOOL
            return expr
        if not (isinstance(lt, ScalarType) and isinstance(rt, ScalarType)):
            raise CLCompileError(
                f"operator {expr.op!r} needs scalar operands, got {lt} and {rt} "
                "(pointer arithmetic is not supported; use indexing)",
                expr.line,
                expr.col,
            )
        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            common = usual_arithmetic_conversions(lt, rt)
            expr.lhs = self._coerce(expr.lhs, common)
            expr.rhs = self._coerce(expr.rhs, common)
            expr.type = BOOL
            return expr
        if expr.op in ("<<", ">>"):
            if lt.is_float or rt.is_float:
                raise CLCompileError("shift needs integer operands", expr.line, expr.col)
            result = integer_promote(lt)
            expr.lhs = self._coerce(expr.lhs, result)
            expr.rhs = self._coerce(expr.rhs, result)
            expr.type = result
            return expr
        if expr.op in ("&", "|", "^", "%"):
            if expr.op == "%" and (lt.is_float or rt.is_float):
                raise CLCompileError("% needs integer operands (use fmod for floats)", expr.line, expr.col)
            if expr.op != "%" and (lt.is_float or rt.is_float):
                raise CLCompileError(f"{expr.op} needs integer operands", expr.line, expr.col)
            common = usual_arithmetic_conversions(lt, rt)
            expr.lhs = self._coerce(expr.lhs, common)
            expr.rhs = self._coerce(expr.rhs, common)
            expr.type = common
            return expr
        if expr.op in ("+", "-", "*", "/"):
            common = usual_arithmetic_conversions(lt, rt)
            expr.lhs = self._coerce(expr.lhs, common)
            expr.rhs = self._coerce(expr.rhs, common)
            expr.type = common
            return expr
        raise CLCompileError(f"unknown binary operator {expr.op!r}", expr.line, expr.col)

    def _visit_Assign(self, expr: A.Assign, scope: Scope) -> A.Expr:
        expr.target = self._visit_expr(expr.target, scope)
        self._require_lvalue(expr.target)
        expr.value = self._visit_expr(expr.value, scope)
        target_t = expr.target.type
        if isinstance(target_t, PointerType):
            raise CLCompileError("cannot reassign pointers", expr.line, expr.col)
        if expr.op == "=":
            expr.value = self._coerce(expr.value, target_t)
            expr.common_type = target_t  # type: ignore[attr-defined]
        else:
            base_op = expr.op[:-1]
            vt = expr.value.type
            if not isinstance(vt, ScalarType):
                raise CLCompileError(f"operator {expr.op!r} needs a scalar value", expr.line, expr.col)
            if base_op in ("<<", ">>"):
                if target_t.is_float or vt.is_float:
                    raise CLCompileError("shift needs integer operands", expr.line, expr.col)
                common = integer_promote(target_t)
            elif base_op in ("&", "|", "^", "%"):
                if target_t.is_float or vt.is_float:
                    raise CLCompileError(f"{base_op} needs integer operands", expr.line, expr.col)
                common = usual_arithmetic_conversions(target_t, vt)
            else:
                common = usual_arithmetic_conversions(target_t, vt)
            expr.value = self._coerce(expr.value, common)
            expr.common_type = common  # type: ignore[attr-defined]
        expr.type = target_t
        return expr

    def _visit_Index(self, expr: A.Index, scope: Scope) -> A.Expr:
        expr.base = self._visit_expr(expr.base, scope)
        expr.index = self._coerce(self._visit_expr(expr.index, scope), LONG)
        base_t = expr.base.type
        if not isinstance(base_t, PointerType):
            raise CLCompileError(f"cannot index a value of type {base_t}", expr.line, expr.col)
        if not isinstance(expr.base, A.VarRef):
            raise CLCompileError(
                "indexing is only supported directly on pointer variables", expr.line, expr.col
            )
        expr.type = base_t.pointee
        return expr

    def _visit_Cast(self, expr: A.Cast, scope: Scope) -> A.Expr:
        expr.expr = self._visit_expr(expr.expr, scope)
        if not isinstance(expr.expr.type, ScalarType):
            raise CLCompileError(f"cannot cast {expr.expr.type} to {expr.target_type}", expr.line, expr.col)
        expr.type = expr.target_type
        return expr

    def _visit_ImplicitCast(self, expr: A.ImplicitCast, scope: Scope) -> A.Expr:
        # Only created by sema itself; already typed.
        return expr

    def _visit_Ternary(self, expr: A.Ternary, scope: Scope) -> A.Expr:
        expr.cond = self._coerce(self._visit_expr(expr.cond, scope), BOOL)
        expr.then = self._visit_expr(expr.then, scope)
        expr.els = self._visit_expr(expr.els, scope)
        tt, et = expr.then.type, expr.els.type
        if not (isinstance(tt, ScalarType) and isinstance(et, ScalarType)):
            raise CLCompileError("ternary branches must be scalars", expr.line, expr.col)
        common = usual_arithmetic_conversions(tt, et)
        expr.then = self._coerce(expr.then, common)
        expr.els = self._coerce(expr.els, common)
        expr.type = common
        return expr

    def _visit_Call(self, expr: A.Call, scope: Scope) -> A.Expr:
        for i, arg in enumerate(expr.args):
            expr.args[i] = self._visit_expr(arg, scope)
        arg_types = [a.type for a in expr.args]

        m = _CONVERT_RE.match(expr.name)
        if m:
            type_name = m.group(1)
            target = SCALAR_TYPES.get(type_name)
            if target is None:
                raise CLCompileError(f"unknown conversion {expr.name!r}", expr.line, expr.col)
            if len(expr.args) != 1 or not isinstance(arg_types[0], ScalarType):
                raise CLCompileError(f"{expr.name} expects one scalar argument", expr.line, expr.col)
            expr.convert_type = target  # type: ignore[attr-defined]
            expr.builtin = None  # type: ignore[attr-defined]
            expr.func = None  # type: ignore[attr-defined]
            expr.type = target
            return expr

        builtin = resolve_builtin(expr.name, arg_types, expr)
        if builtin is not None:
            for i, (arg, want) in enumerate(zip(expr.args, builtin.arg_types)):
                if isinstance(want, ScalarType) and arg.type != want:
                    expr.args[i] = self._coerce(arg, want)
                elif isinstance(want, PointerType):
                    if not isinstance(arg.type, PointerType) or arg.type.pointee != want.pointee:
                        raise CLCompileError(
                            f"{expr.name}: argument {i + 1} must be {want}", expr.line, expr.col
                        )
            expr.builtin = builtin  # type: ignore[attr-defined]
            expr.func = None  # type: ignore[attr-defined]
            expr.convert_type = None  # type: ignore[attr-defined]
            expr.type = builtin.result_type
            return expr

        info = self.functions.get(expr.name)
        if info is None:
            raise CLCompileError(f"call to undefined function {expr.name!r}", expr.line, expr.col)
        if len(expr.args) != len(info.param_symbols):
            raise CLCompileError(
                f"{expr.name} expects {len(info.param_symbols)} argument(s), got {len(expr.args)}",
                expr.line,
                expr.col,
            )
        for i, (arg, psym) in enumerate(zip(expr.args, info.param_symbols)):
            if isinstance(psym.type, PointerType):
                at = arg.type
                if not isinstance(at, PointerType) or at.pointee != psym.type.pointee:
                    raise CLCompileError(
                        f"{expr.name}: argument {i + 1} must be {psym.type}, got {at}",
                        expr.line,
                        expr.col,
                    )
            else:
                expr.args[i] = self._coerce(arg, psym.type)
        if self._current is not None:
            self._current.callees.add(expr.name)
        expr.func = info  # type: ignore[attr-defined]
        expr.builtin = None  # type: ignore[attr-defined]
        expr.convert_type = None  # type: ignore[attr-defined]
        expr.type = info.return_type
        return expr


def analyze(program: A.Program) -> AnalyzedProgram:
    return SemanticAnalyzer(program).analyze()
