"""An OpenCL C (subset) compiler with two backends.

OpenCL programs are *source strings compiled at runtime per device* — the
mechanism dOpenCL forwards over the network (``clCreateProgramWithSource``
is explicitly called out in Section III-B as a bulk-data transfer).  This
package provides that mechanism for the pure-Python runtime:

* :func:`compile_program` — front end: preprocessor, lexer, recursive
  descent parser, semantic analysis (C-style typing/promotions).
* :mod:`repro.clc.codegen` — the production backend: SPMD-on-SIMD
  vectorised NumPy code with mask-based divergence (ispc-style).
* :mod:`repro.clc.interp` — a per-work-item reference interpreter used for
  differential testing of the vector backend.
* :mod:`repro.clc.runtime` — NDRange dispatch, argument binding, local
  memory, and operation accounting for the device cost model.

Supported language subset: scalar types (``char`` … ``double``), global /
local / constant / private pointers, full expression grammar (including
ternary and compound assignment), ``if``/``while``/``for``/``do``,
``break``/``continue``/``return``, user-defined helper functions, the
work-item builtins, common math builtins, and global-memory atomics.
Vector types, images and structs are not implemented (the paper's
applications do not need them; the runtime reports clean build errors).
"""

from repro.clc.errors import CLCompileError, CLCRuntimeError
from repro.clc.driver import CompiledKernel, CompiledProgram, compile_program
from repro.clc.runtime import ExecutionStats, LocalMemory, NDRange, execute_kernel

__all__ = [
    "CLCompileError",
    "CLCRuntimeError",
    "CompiledKernel",
    "CompiledProgram",
    "ExecutionStats",
    "LocalMemory",
    "NDRange",
    "compile_program",
    "execute_kernel",
]
