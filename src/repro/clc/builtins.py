"""Builtin function registry: work-item queries, math, atomics, sync.

Each builtin resolves to a :class:`BuiltinCall` descriptor carrying the
result type, the types the arguments must be cast to, the implementation
key (shared between the vector backend and the interpreter through
:data:`NUMPY_IMPLS`), and a cost weight for the op-accounting model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.clc.errors import CLCompileError
from repro.clc.types import (
    DOUBLE,
    FLOAT,
    INT,
    PointerType,
    ScalarType,
    SIZE_T,
    UINT,
    VOID,
    integer_promote,
    usual_arithmetic_conversions,
)


@dataclass(frozen=True)
class BuiltinCall:
    """A resolved builtin invocation."""

    kind: str  # "workitem" | "math" | "atomic" | "barrier" | "convert"
    name: str
    result_type: object
    arg_types: Sequence[object]  # types arguments must be cast to
    impl: str  # key into NUMPY_IMPLS (for kind == "math")
    weight: float  # cost-model weight per active lane


_MATH_1 = {
    # name -> (impl key, weight)
    "sqrt": ("sqrt", 4.0),
    "rsqrt": ("rsqrt", 4.0),
    "exp": ("exp", 8.0),
    "exp2": ("exp2", 8.0),
    "exp10": ("exp10", 8.0),
    "log": ("log", 8.0),
    "log2": ("log2", 8.0),
    "log10": ("log10", 8.0),
    "sin": ("sin", 8.0),
    "cos": ("cos", 8.0),
    "tan": ("tan", 8.0),
    "asin": ("asin", 8.0),
    "acos": ("acos", 8.0),
    "atan": ("atan", 8.0),
    "sinh": ("sinh", 8.0),
    "cosh": ("cosh", 8.0),
    "tanh": ("tanh", 8.0),
    "fabs": ("fabs", 1.0),
    "floor": ("floor", 1.0),
    "ceil": ("ceil", 1.0),
    "round": ("round", 1.0),
    "trunc": ("trunc", 1.0),
    "sign": ("sign", 1.0),
}

_MATH_2 = {
    "pow": ("pow", 12.0),
    "powr": ("pow", 12.0),
    "atan2": ("atan2", 10.0),
    "fmod": ("fmod", 4.0),
    "fmin": ("fmin", 1.0),
    "fmax": ("fmax", 1.0),
    "hypot": ("hypot", 6.0),
    "copysign": ("copysign", 1.0),
    "step": ("step", 1.0),
}

_MATH_3 = {
    "fma": ("fma", 1.0),
    "mad": ("fma", 1.0),
    "mix": ("mix", 2.0),
    "smoothstep": ("smoothstep", 4.0),
}

_WORKITEM = {
    "get_global_id": 1,
    "get_local_id": 1,
    "get_group_id": 1,
    "get_global_size": 1,
    "get_local_size": 1,
    "get_num_groups": 1,
    "get_global_offset": 1,
    "get_work_dim": 0,
}

_ATOMIC_2 = {"atomic_add", "atomic_sub", "atomic_min", "atomic_max", "atomic_xchg",
             "atomic_and", "atomic_or", "atomic_xor"}
_ATOMIC_1 = {"atomic_inc", "atomic_dec"}
_ATOMIC_3 = {"atomic_cmpxchg"}

_SYNC = {"barrier": 1, "mem_fence": 1, "read_mem_fence": 1, "write_mem_fence": 1}


def is_builtin(name: str) -> bool:
    if name.startswith("atom_"):  # OpenCL 1.0 spelling
        name = "atomic_" + name[len("atom_") :]
    if name.startswith("native_") or name.startswith("half_"):
        name = name.split("_", 1)[1]
    return (
        name in _MATH_1
        or name in _MATH_2
        or name in _MATH_3
        or name in _WORKITEM
        or name in _ATOMIC_1
        or name in _ATOMIC_2
        or name in _ATOMIC_3
        or name in _SYNC
        or name in ("min", "max", "clamp", "abs")
    )


def _float_result(arg_types: List[object], name: str, node) -> ScalarType:
    """Pick float or double for a float-generic builtin."""
    result = FLOAT
    for t in arg_types:
        if not isinstance(t, ScalarType):
            raise CLCompileError(f"{name}: scalar argument expected, got {t}", node.line, node.col)
        if t is DOUBLE:
            result = DOUBLE
    return result


def resolve_builtin(name: str, arg_types: List[object], node) -> Optional[BuiltinCall]:
    """Resolve ``name(arg_types...)``; returns None if not a builtin."""
    canonical = name
    if canonical.startswith("atom_"):
        canonical = "atomic_" + canonical[len("atom_") :]
    if canonical.startswith("native_") or canonical.startswith("half_"):
        stripped = canonical.split("_", 1)[1]
        if stripped in _MATH_1 or stripped in _MATH_2:
            canonical = stripped

    def need(n: int) -> None:
        if len(arg_types) != n:
            raise CLCompileError(
                f"{name} expects {n} argument(s), got {len(arg_types)}", node.line, node.col
            )

    if canonical in _WORKITEM:
        need(_WORKITEM[canonical])
        return BuiltinCall("workitem", canonical, SIZE_T if canonical != "get_work_dim" else UINT,
                           [UINT] * _WORKITEM[canonical], canonical, 1.0)

    if canonical in _SYNC:
        need(1)
        return BuiltinCall("barrier", canonical, VOID, [UINT], canonical, 1.0)

    if canonical in _MATH_1:
        need(1)
        impl, weight = _MATH_1[canonical]
        res = _float_result(arg_types, name, node)
        return BuiltinCall("math", canonical, res, [res], impl, weight)

    if canonical in _MATH_2:
        need(2)
        impl, weight = _MATH_2[canonical]
        res = _float_result(arg_types, name, node)
        return BuiltinCall("math", canonical, res, [res, res], impl, weight)

    if canonical in _MATH_3:
        need(3)
        impl, weight = _MATH_3[canonical]
        res = _float_result(arg_types, name, node)
        return BuiltinCall("math", canonical, res, [res] * 3, impl, weight)

    if canonical in ("min", "max"):
        need(2)
        a, b = arg_types
        if not (isinstance(a, ScalarType) and isinstance(b, ScalarType)):
            raise CLCompileError(f"{name}: scalar arguments expected", node.line, node.col)
        res = usual_arithmetic_conversions(a, b)
        impl = "fmin" if canonical == "min" else "fmax"
        return BuiltinCall("math", canonical, res, [res, res], impl, 1.0)

    if canonical == "clamp":
        need(3)
        for t in arg_types:
            if not isinstance(t, ScalarType):
                raise CLCompileError("clamp: scalar arguments expected", node.line, node.col)
        res = arg_types[0]
        if any(t.is_float for t in arg_types):
            res = _float_result(list(arg_types), name, node)
        else:
            res = integer_promote(res)
        return BuiltinCall("math", canonical, res, [res] * 3, "clamp", 1.0)

    if canonical == "abs":
        need(1)
        t = arg_types[0]
        if not isinstance(t, ScalarType):
            raise CLCompileError("abs: scalar argument expected", node.line, node.col)
        res = integer_promote(t) if t.is_integer else t
        return BuiltinCall("math", canonical, res, [res], "fabs", 1.0)

    if canonical in _ATOMIC_1 | _ATOMIC_2 | _ATOMIC_3:
        n_args = 1 if canonical in _ATOMIC_1 else (2 if canonical in _ATOMIC_2 else 3)
        need(n_args)
        ptr = arg_types[0]
        if not isinstance(ptr, PointerType) or ptr.address_space == "constant":
            raise CLCompileError(
                f"{name}: first argument must be a writable pointer", node.line, node.col
            )
        elem = ptr.pointee
        if elem.is_float and canonical not in ("atomic_add", "atomic_xchg", "atomic_cmpxchg"):
            raise CLCompileError(
                f"{name} on float is not supported (cl_repro_float_atomics covers "
                "atomic_add/atomic_xchg/atomic_cmpxchg only)",
                node.line,
                node.col,
            )
        casts: List[object] = [ptr] + [elem] * (n_args - 1)
        return BuiltinCall("atomic", canonical, elem, casts, canonical, 4.0)

    return None


def _step(edge, x):
    return np.where(x < edge, x.dtype.type(0) if hasattr(x, "dtype") else 0.0, 1).astype(
        np.result_type(edge, x)
    )


def _smoothstep(e0, e1, x):
    t = np.clip((x - e0) / (e1 - e0), 0.0, 1.0)
    return (t * t * (3.0 - 2.0 * t)).astype(np.result_type(e0, e1, x))


#: impl key -> numpy callable (works for both array lanes and scalars).
NUMPY_IMPLS: Dict[str, Callable] = {
    "sqrt": np.sqrt,
    "rsqrt": lambda x: 1.0 / np.sqrt(x),
    "exp": np.exp,
    "exp2": np.exp2,
    "exp10": lambda x: np.exp(x * np.asarray(x).dtype.type(2.302585092994046)),
    "log": np.log,
    "log2": np.log2,
    "log10": np.log10,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "fabs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "trunc": np.trunc,
    "sign": np.sign,
    "pow": np.power,
    "atan2": np.arctan2,
    "fmod": np.fmod,
    "fmin": np.minimum,
    "fmax": np.maximum,
    "hypot": np.hypot,
    "copysign": np.copysign,
    "step": _step,
    "fma": lambda a, b, c: a * b + c,
    "mix": lambda a, b, t: a + (b - a) * t,
    "smoothstep": _smoothstep,
    "clamp": lambda x, lo, hi: np.clip(x, lo, hi),
}
