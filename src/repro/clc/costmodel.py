"""Mapping kernel work accounting onto device time.

The vector backend counts *weighted abstract operations per active lane*
(see the ``W_*`` constants in :mod:`repro.clc.vecrt`).  A device spec's
``ops_per_second`` says how many of those ops it retires per simulated
second; the kernel's execution time is then launch overhead + ops/rate.

``workload_scale`` supports the benchmark-rescaling methodology described
in EXPERIMENTS.md: benches run reduced-size workloads but charge the cost
of the paper-size ones by scaling the measured op count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clc.runtime import ExecutionStats
from repro.hw.specs import DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Simulated execution cost of one kernel dispatch."""

    ops: float
    seconds: float
    launch_overhead: float

    @property
    def compute_seconds(self) -> float:
        return self.seconds - self.launch_overhead


def kernel_cost(
    stats: ExecutionStats,
    device: DeviceSpec,
    workload_scale: float = 1.0,
) -> KernelCost:
    """Simulated seconds for ``stats`` on ``device``."""
    if workload_scale <= 0:
        raise ValueError(f"workload_scale must be positive, got {workload_scale}")
    ops = stats.ops * workload_scale
    seconds = device.launch_overhead + ops / device.ops_per_second
    return KernelCost(ops=ops, seconds=seconds, launch_overhead=device.launch_overhead)
