"""Reference interpreter: one work-item at a time, tree-walking.

Deliberately simple and obviously correct — the differential-testing
oracle for the vector backend.  Atomics get exact serialised semantics
here (the vector backend documents weaker return-value ordering).
Barriers are not supported (sequential per-item execution cannot satisfy
them); differential tests use barrier-free kernels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.clc import cast as A
from repro.clc.builtins import NUMPY_IMPLS
from repro.clc.errors import CLCRuntimeError
from repro.clc.runtime import ExecutionStats, LocalMemory, NDRange
from repro.clc.sema import FunctionInfo, Symbol
from repro.clc.types import PointerType, ScalarType


class _BreakEx(Exception):
    pass


class _ContinueEx(Exception):
    pass


class _ReturnEx(Exception):
    def __init__(self, value) -> None:
        self.value = value


class _ElementPtr:
    """Value of ``&buf[i]`` — only consumed by atomics."""

    __slots__ = ("array", "index")

    def __init__(self, array: np.ndarray, index: int) -> None:
        self.array = array
        self.index = index


class Interpreter:
    def __init__(self, kernel, nd: NDRange, bound_args: Sequence[object]) -> None:
        self.kernel = kernel
        self.analyzed = kernel.program.analyzed
        self.nd = nd
        self.bound_args = list(bound_args)
        self.stats = ExecutionStats()
        # current work-item coordinates
        self._group_coords: List[int] = [0] * nd.work_dim
        self._local_coords: List[int] = [0] * nd.work_dim
        self._group_locals: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def run(self) -> ExecutionStats:
        nd = self.nd
        info: FunctionInfo = self.kernel.info
        with np.errstate(all="ignore"):
            for group_lin in range(nd.total_groups):
                rest = group_lin
                for d in range(nd.work_dim):
                    self._group_coords[d] = rest % nd.num_groups[d]
                    rest //= nd.num_groups[d]
                self._group_locals = {}
                group_args = []
                for sym, val in zip(info.param_symbols, self.bound_args):
                    if isinstance(val, LocalMemory):
                        elems = val.nbytes // sym.type.pointee.size
                        group_args.append(
                            np.zeros(elems, dtype=sym.type.pointee.np_dtype)
                        )
                    else:
                        group_args.append(val)
                for local_lin in range(nd.group_size):
                    rest = local_lin
                    for d in range(nd.work_dim):
                        self._local_coords[d] = rest % nd.local_size[d]
                        rest //= nd.local_size[d]
                    self._call_function(info, group_args)
                    self.stats.work_items += 1
        self.stats.chunks = nd.total_groups
        return self.stats

    # ------------------------------------------------------------------
    def _call_function(self, info: FunctionInfo, args: Sequence[object]):
        env: Dict[str, object] = {}
        for sym, val in zip(info.param_symbols, args):
            env[sym.slot] = val
        try:
            self._exec_block(info.node.body, env)
        except _ReturnEx as ret:
            return ret.value
        return None

    # -- statements ---------------------------------------------------------
    def _exec_block(self, block: A.Block, env: Dict[str, object]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: A.Stmt, env: Dict[str, object]) -> None:
        if isinstance(stmt, A.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                self._exec_decl(decl, env)
        elif isinstance(stmt, A.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, A.If):
            if self._eval(stmt.cond, env):
                self._exec_block(stmt.then, env)
            elif stmt.els is not None:
                self._exec_block(stmt.els, env)
        elif isinstance(stmt, A.While):
            while self._eval(stmt.cond, env):
                try:
                    self._exec_block(stmt.body, env)
                except _BreakEx:
                    break
                except _ContinueEx:
                    continue
        elif isinstance(stmt, A.DoWhile):
            while True:
                try:
                    self._exec_block(stmt.body, env)
                except _BreakEx:
                    break
                except _ContinueEx:
                    pass
                if not self._eval(stmt.cond, env):
                    break
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, env)
            while stmt.cond is None or self._eval(stmt.cond, env):
                try:
                    self._exec_block(stmt.body, env)
                except _BreakEx:
                    break
                except _ContinueEx:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, env)
        elif isinstance(stmt, A.Break):
            raise _BreakEx()
        elif isinstance(stmt, A.Continue):
            raise _ContinueEx()
        elif isinstance(stmt, A.Return):
            value = self._eval(stmt.value, env) if stmt.value is not None else None
            raise _ReturnEx(value)
        else:  # pragma: no cover
            raise CLCRuntimeError(f"interp: unhandled statement {type(stmt).__name__}")

    def _exec_decl(self, decl: A.VarDecl, env: Dict[str, object]) -> None:
        sym: Symbol = decl.symbol
        if sym.kind == "array":
            elem = sym.type.pointee
            if sym.address_space == "local":
                arr = self._group_locals.get(sym.slot)
                if arr is None:
                    arr = np.zeros(sym.array_size, dtype=elem.np_dtype)
                    self._group_locals[sym.slot] = arr
                env[sym.slot] = arr
            else:
                env[sym.slot] = np.zeros(sym.array_size, dtype=elem.np_dtype)
            return
        if decl.init is not None:
            env[sym.slot] = self._eval(decl.init, env)
        elif isinstance(sym.type, ScalarType):
            env[sym.slot] = sym.type.np_dtype.type(0)

    # -- expressions -----------------------------------------------------------
    def _eval(self, expr: A.Expr, env: Dict[str, object]):
        self.stats.ops += 1
        if isinstance(expr, A.IntLiteral):
            return expr.type.np_dtype.type(expr.value)
        if isinstance(expr, A.FloatLiteral):
            return expr.type.np_dtype.type(expr.value)
        if isinstance(expr, A.BoolLiteral):
            return np.bool_(expr.value)
        if isinstance(expr, A.VarRef):
            return env[expr.symbol.slot]
        if isinstance(expr, (A.Cast, A.ImplicitCast)):
            val = self._eval(expr.expr, env)
            return expr.target_type.np_dtype.type(val)
        if isinstance(expr, A.UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, A.PostfixOp):
            old = self._read_lvalue(expr.operand, env)
            delta = expr.type.np_dtype.type(1)
            new = old + delta if expr.op == "++" else old - delta
            self._write_lvalue(expr.operand, expr.type.np_dtype.type(new), env)
            return old
        if isinstance(expr, A.BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, A.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, A.Index):
            base = env[expr.base.symbol.slot]
            idx = int(self._eval(expr.index, env))
            self._bounds(idx, base.shape[0], "load")
            return base[idx]
        if isinstance(expr, A.Ternary):
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.els, env)
        if isinstance(expr, A.Call):
            return self._eval_call(expr, env)
        raise CLCRuntimeError(f"interp: unhandled expression {type(expr).__name__}")  # pragma: no cover

    def _bounds(self, idx: int, size: int, what: str) -> None:
        if not 0 <= idx < size:
            raise CLCRuntimeError(f"out-of-bounds {what}: index {idx} not in [0, {size})")

    def _eval_unary(self, expr: A.UnaryOp, env):
        if expr.op in ("++", "--"):
            old = self._read_lvalue(expr.operand, env)
            delta = expr.type.np_dtype.type(1)
            new = old + delta if expr.op == "++" else old - delta
            new = expr.type.np_dtype.type(new)
            self._write_lvalue(expr.operand, new, env)
            return new
        if expr.op == "&":
            index_expr: A.Index = expr.operand
            base = env[index_expr.base.symbol.slot]
            idx = int(self._eval(index_expr.index, env))
            self._bounds(idx, base.shape[0], "address-of")
            return _ElementPtr(base, idx)
        val = self._eval(expr.operand, env)
        if expr.op == "-":
            return expr.type.np_dtype.type(-val)
        if expr.op == "+":
            return val
        if expr.op == "!":
            return np.bool_(not bool(val))
        if expr.op == "~":
            return expr.type.np_dtype.type(~val)
        raise CLCRuntimeError(f"interp: unary {expr.op!r}")  # pragma: no cover

    @staticmethod
    def _c_idiv(a, b, dtype):
        if int(b) == 0:
            return dtype.type(0)  # UB in C; match the vector backend's guard
        q = abs(int(a)) // abs(int(b))
        if (int(a) < 0) != (int(b) < 0):
            q = -q
        return dtype.type(q)

    @staticmethod
    def _c_imod(a, b, dtype):
        if int(b) == 0:
            return dtype.type(0)
        r = abs(int(a)) % abs(int(b))
        if int(a) < 0:
            r = -r
        return dtype.type(r)

    def _apply_binop(self, op: str, a, b, result_type):
        if op == "+":
            return result_type.np_dtype.type(a + b)
        if op == "-":
            return result_type.np_dtype.type(a - b)
        if op == "*":
            return result_type.np_dtype.type(a * b)
        if op == "/":
            if result_type.is_float:
                with np.errstate(all="ignore"):
                    return result_type.np_dtype.type(np.divide(a, b))
            return self._c_idiv(a, b, result_type.np_dtype)
        if op == "%":
            return self._c_imod(a, b, result_type.np_dtype)
        if op == "<<":
            width = result_type.size * 8
            return result_type.np_dtype.type(np.left_shift(a, int(b) & (width - 1)))
        if op == ">>":
            width = result_type.size * 8
            return result_type.np_dtype.type(np.right_shift(a, int(b) & (width - 1)))
        if op == "&":
            return result_type.np_dtype.type(a & b)
        if op == "|":
            return result_type.np_dtype.type(a | b)
        if op == "^":
            return result_type.np_dtype.type(a ^ b)
        raise CLCRuntimeError(f"interp: binary {op!r}")  # pragma: no cover

    def _eval_binary(self, expr: A.BinaryOp, env):
        op = expr.op
        if op == ",":
            self._eval(expr.lhs, env)
            return self._eval(expr.rhs, env)
        if op == "&&":
            return np.bool_(bool(self._eval(expr.lhs, env)) and bool(self._eval(expr.rhs, env)))
        if op == "||":
            return np.bool_(bool(self._eval(expr.lhs, env)) or bool(self._eval(expr.rhs, env)))
        a = self._eval(expr.lhs, env)
        b = self._eval(expr.rhs, env)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            result = {
                "==": a == b,
                "!=": a != b,
                "<": a < b,
                ">": a > b,
                "<=": a <= b,
                ">=": a >= b,
            }[op]
            return np.bool_(result)
        return self._apply_binop(op, a, b, expr.type)

    def _read_lvalue(self, target: A.Expr, env):
        if isinstance(target, A.VarRef):
            return env[target.symbol.slot]
        base = env[target.base.symbol.slot]
        idx = int(self._eval(target.index, env))
        self._bounds(idx, base.shape[0], "load")
        return base[idx]

    def _write_lvalue(self, target: A.Expr, value, env) -> None:
        if isinstance(target, A.VarRef):
            env[target.symbol.slot] = value
            return
        base = env[target.base.symbol.slot]
        idx = int(self._eval(target.index, env))
        self._bounds(idx, base.shape[0], "store")
        base[idx] = value

    def _eval_assign(self, expr: A.Assign, env):
        value = self._eval(expr.value, env)
        target_t: ScalarType = expr.target.type
        if expr.op == "=":
            result = target_t.np_dtype.type(value)
        else:
            cur = self._read_lvalue(expr.target, env)
            common: ScalarType = expr.common_type
            cur_c = common.np_dtype.type(cur)
            interim = self._apply_binop(expr.op[:-1], cur_c, value, common)
            result = target_t.np_dtype.type(interim)
        self._write_lvalue(expr.target, result, env)
        return result

    def _eval_call(self, expr: A.Call, env):
        if getattr(expr, "convert_type", None) is not None:
            val = self._eval(expr.args[0], env)
            return expr.convert_type.np_dtype.type(val)
        builtin = getattr(expr, "builtin", None)
        if builtin is not None:
            if builtin.kind == "workitem":
                return self._workitem(builtin.name, expr, env)
            if builtin.kind == "barrier":
                raise CLCRuntimeError(
                    "barrier() is not supported by the reference interpreter "
                    "(sequential execution); use the vector backend"
                )
            if builtin.kind == "math":
                args = [self._eval(a, env) for a in expr.args]
                result = NUMPY_IMPLS[builtin.impl](*args)
                if isinstance(builtin.result_type, ScalarType):
                    return builtin.result_type.np_dtype.type(result)
                return result
            if builtin.kind == "atomic":
                return self._atomic(builtin.name, expr, env)
            raise CLCRuntimeError(f"interp: builtin kind {builtin.kind!r}")  # pragma: no cover
        info: FunctionInfo = expr.func
        args = [self._eval(a, env) for a in expr.args]
        return self._call_function(info, args)

    def _workitem(self, name: str, expr: A.Call, env):
        nd = self.nd
        if name == "get_work_dim":
            return np.uint32(nd.work_dim)
        d = int(self._eval(expr.args[0], env))
        in_range = 0 <= d < nd.work_dim
        if name == "get_global_id":
            if not in_range:
                return np.uint64(0)
            return np.uint64(
                self._group_coords[d] * nd.local_size[d]
                + self._local_coords[d]
                + nd.global_offset[d]
            )
        if name == "get_local_id":
            return np.uint64(self._local_coords[d] if in_range else 0)
        if name == "get_group_id":
            return np.uint64(self._group_coords[d] if in_range else 0)
        if name == "get_global_size":
            return np.uint64(nd.global_size[d] if in_range else 1)
        if name == "get_local_size":
            return np.uint64(nd.local_size[d] if in_range else 1)
        if name == "get_num_groups":
            return np.uint64(nd.num_groups[d] if in_range else 1)
        if name == "get_global_offset":
            return np.uint64(nd.global_offset[d] if in_range else 0)
        raise CLCRuntimeError(f"interp: workitem fn {name!r}")  # pragma: no cover

    def _atomic(self, name: str, expr: A.Call, env):
        ptr = self._eval(expr.args[0], env)
        if isinstance(ptr, _ElementPtr):
            arr, idx = ptr.array, ptr.index
        elif isinstance(ptr, np.ndarray):
            arr, idx = ptr, 0
        else:
            raise CLCRuntimeError(f"{name}: bad pointer argument")
        vals = [self._eval(a, env) for a in expr.args[1:]]
        old = arr[idx]
        dt = arr.dtype.type
        if name == "atomic_add":
            arr[idx] = dt(old + vals[0])
        elif name == "atomic_sub":
            arr[idx] = dt(old - vals[0])
        elif name == "atomic_min":
            arr[idx] = min(old, dt(vals[0]))
        elif name == "atomic_max":
            arr[idx] = max(old, dt(vals[0]))
        elif name == "atomic_and":
            arr[idx] = dt(old & vals[0])
        elif name == "atomic_or":
            arr[idx] = dt(old | vals[0])
        elif name == "atomic_xor":
            arr[idx] = dt(old ^ vals[0])
        elif name == "atomic_inc":
            arr[idx] = dt(old + 1)
        elif name == "atomic_dec":
            arr[idx] = dt(old - 1)
        elif name == "atomic_xchg":
            arr[idx] = dt(vals[0])
        elif name == "atomic_cmpxchg":
            if old == vals[0]:
                arr[idx] = dt(vals[1])
        else:  # pragma: no cover
            raise CLCRuntimeError(f"interp: atomic {name!r}")
        return old


def execute_interp(kernel, nd: NDRange, bound_args: Sequence[object]) -> ExecutionStats:
    return Interpreter(kernel, nd, bound_args).run()
