"""Runtime helpers called by vector-backend generated code.

The code generator (:mod:`repro.clc.codegen`) emits three-address Python
that calls these helpers.  Every helper that represents kernel work takes
the execution context and the active lane count and charges the op
accounting used by the device cost model.

Conventions: ``m`` is the active-lane mask (bool ndarray of shape
``(lanes,)``), ``mn`` its popcount; values are NumPy scalars (uniform) or
arrays of shape ``(lanes,)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.clc.builtins import NUMPY_IMPLS
from repro.clc.errors import CLCRuntimeError

# -- op-accounting weights (abstract "ops" per active lane) -------------
W_ALU = 1.0
W_DIV = 4.0
W_MEM = 2.0
W_ATOMIC = 4.0


def count(m: np.ndarray) -> int:
    return int(np.count_nonzero(m))


def not_(c: Any) -> Any:
    return np.logical_not(c)


def merge(m: np.ndarray, new: Any, old: Any) -> np.ndarray:
    """Masked assignment: new where active, old elsewhere."""
    return np.where(m, new, old)


def default(ctx, dtype: str) -> Any:
    """Zero value used for declarations under a partial mask."""
    return np.zeros(ctx.lanes, dtype=np.dtype(dtype))


def cast(ctx, mn: int, val: Any, dtype: str) -> Any:
    ctx.ops += mn * W_ALU
    dt = np.dtype(dtype)
    if isinstance(val, np.ndarray):
        return val.astype(dt, copy=False)
    return dt.type(val)


def uniform(val: Any) -> int:
    """Collapse a uniform value (e.g. a work-item dimension index)."""
    arr = np.asarray(val)
    if arr.ndim == 0:
        return int(arr)
    first = arr.flat[0]
    if not np.all(arr == first):
        raise CLCRuntimeError("non-uniform value where a uniform was required")
    return int(first)


# -- arithmetic ----------------------------------------------------------
def _charge(ctx, mn: int, w: float) -> None:
    ctx.ops += mn * w


def add(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.add(a, b)


def sub(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.subtract(a, b)


def mul(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.multiply(a, b)


def fdiv(ctx, mn, a, b):
    _charge(ctx, mn, W_DIV)
    return np.divide(a, b)


def idiv(ctx, mn, a, b):
    """C-style integer division: truncation toward zero.

    Division by zero is UB in C; this substrate defines it as 0 (both
    backends agree, so differential tests stay meaningful).
    """
    _charge(ctx, mn, W_DIV)
    zero = np.asarray(b) == 0
    b_safe = np.where(zero, np.ones_like(b), b)
    q = np.floor_divide(a, b_safe)
    r = a - q * b_safe
    # floor != trunc only when signs differ and remainder nonzero
    fix = (r != 0) & ((np.asarray(a) < 0) != (b_safe < 0))
    out = (q + fix).astype(np.result_type(a, b), copy=False)
    return np.where(zero, np.zeros_like(out), out)


def imod(ctx, mn, a, b):
    """C-style remainder (sign of the dividend); x % 0 defined as 0."""
    _charge(ctx, mn, W_DIV)
    zero = np.asarray(b) == 0
    b_safe = np.where(zero, np.ones_like(b), b)
    out = np.fmod(a, b_safe)
    return np.where(zero, np.zeros_like(out), out)


def neg(ctx, mn, a):
    _charge(ctx, mn, W_ALU)
    return np.negative(a)


def invert(ctx, mn, a):
    _charge(ctx, mn, W_ALU)
    return np.invert(a)


def shl(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    width = np.dtype(np.asarray(a).dtype).itemsize * 8
    return np.left_shift(a, np.asarray(b) & (width - 1))


def shr(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    width = np.dtype(np.asarray(a).dtype).itemsize * 8
    return np.right_shift(a, np.asarray(b) & (width - 1))


def bitand(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.bitwise_and(a, b)


def bitor(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.bitwise_or(a, b)


def bitxor(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.bitwise_xor(a, b)


# -- comparisons / logic ---------------------------------------------------
def lt(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.less(a, b)


def le(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.less_equal(a, b)


def gt(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.greater(a, b)


def ge(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.greater_equal(a, b)


def eq(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.equal(a, b)


def ne(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.not_equal(a, b)


def and_(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.logical_and(a, b)


def or_(ctx, mn, a, b):
    _charge(ctx, mn, W_ALU)
    return np.logical_or(a, b)


def select(ctx, mn, c, a, b):
    _charge(ctx, mn, W_ALU)
    return np.where(c, a, b)


def math(ctx, mn, impl: str, weight: float, *args):
    _charge(ctx, mn, weight)
    return NUMPY_IMPLS[impl](*args)


# -- memory ----------------------------------------------------------------
def _safe_index(m: np.ndarray, idx: Any, size: int, what: str) -> np.ndarray:
    idx_arr = np.asarray(idx)
    if idx_arr.ndim == 0:
        idx_arr = np.broadcast_to(idx_arr, m.shape)
    active = idx_arr[m]
    if active.size:
        bad = (active < 0) | (active >= size)
        if bad.any():
            off = int(active[np.argmax(bad)])
            raise CLCRuntimeError(
                f"out-of-bounds {what}: index {off} not in [0, {size})"
            )
    return np.where(m, idx_arr, 0)


def load_global(ctx, mn, m, buf: np.ndarray, idx):
    _charge(ctx, mn, W_MEM)
    safe = _safe_index(m, idx, buf.shape[0], "global load")
    return buf[safe]


def store_global(ctx, mn, m, buf: np.ndarray, idx, val):
    _charge(ctx, mn, W_MEM)
    idx_arr = np.asarray(idx)
    if idx_arr.ndim == 0:
        idx_arr = np.broadcast_to(idx_arr, m.shape)
    _safe_index(m, idx_arr, buf.shape[0], "global store")
    val_arr = np.asarray(val, dtype=buf.dtype)
    if val_arr.ndim == 0:
        val_arr = np.broadcast_to(val_arr, m.shape)
    buf[idx_arr[m]] = val_arr[m]


def load_local(ctx, mn, m, arr: np.ndarray, idx):
    _charge(ctx, mn, W_MEM)
    safe = _safe_index(m, idx, arr.shape[1], "local load")
    return arr[ctx.group_ordinal, safe]


def store_local(ctx, mn, m, arr: np.ndarray, idx, val):
    _charge(ctx, mn, W_MEM)
    idx_arr = np.asarray(idx)
    if idx_arr.ndim == 0:
        idx_arr = np.broadcast_to(idx_arr, m.shape)
    _safe_index(m, idx_arr, arr.shape[1], "local store")
    val_arr = np.asarray(val, dtype=arr.dtype)
    if val_arr.ndim == 0:
        val_arr = np.broadcast_to(val_arr, m.shape)
    arr[ctx.group_ordinal[m], idx_arr[m]] = val_arr[m]


def private_array(ctx, dtype: str, size: int) -> np.ndarray:
    return np.zeros((ctx.lanes, size), dtype=np.dtype(dtype))


def load_private(ctx, mn, m, arr: np.ndarray, idx):
    _charge(ctx, mn, W_MEM)
    safe = _safe_index(m, idx, arr.shape[1], "private load")
    return arr[ctx.lane_ids, safe]


def store_private(ctx, mn, m, arr: np.ndarray, idx, val):
    _charge(ctx, mn, W_MEM)
    idx_arr = np.asarray(idx)
    if idx_arr.ndim == 0:
        idx_arr = np.broadcast_to(idx_arr, m.shape)
    _safe_index(m, idx_arr, arr.shape[1], "private store")
    val_arr = np.asarray(val, dtype=arr.dtype)
    if val_arr.ndim == 0:
        val_arr = np.broadcast_to(val_arr, m.shape)
    arr[ctx.lane_ids[m], idx_arr[m]] = val_arr[m]


# -- atomics -----------------------------------------------------------------
_ATOMIC_UFUNC = {
    "atomic_add": np.add,
    "atomic_sub": np.subtract,
    "atomic_min": np.minimum,
    "atomic_max": np.maximum,
    "atomic_and": np.bitwise_and,
    "atomic_or": np.bitwise_or,
    "atomic_xor": np.bitwise_xor,
}


def atomic(ctx, mn, m, op: str, kind: str, arr: np.ndarray, idx, *vals):
    """Vectorised atomics on global/local/private storage.

    Returns the value observed *before this dispatch's updates* (OpenCL
    leaves intra-dispatch ordering undefined; the reference interpreter
    provides exact serialised semantics for differential checks on end
    state).
    """
    _charge(ctx, mn, W_ATOMIC)
    if kind == "global":
        size = arr.shape[0]
        target = arr
        rows = None
    elif kind == "local":
        size = arr.shape[1]
        target = arr
        rows = ctx.group_ordinal
    else:  # private
        size = arr.shape[1]
        target = arr
        rows = ctx.lane_ids
    idx_arr = np.asarray(idx)
    if idx_arr.ndim == 0:
        idx_arr = np.broadcast_to(idx_arr, m.shape)
    _safe_index(m, idx_arr, size, f"{op}")
    sel = idx_arr[m]
    if rows is None:
        old = target[np.where(m, idx_arr, 0)]
    else:
        old = target[rows, np.where(m, idx_arr, 0)]

    def _vals(i: int) -> np.ndarray:
        v = np.asarray(vals[i], dtype=target.dtype)
        if v.ndim == 0:
            v = np.broadcast_to(v, m.shape)
        return v[m]

    if op in _ATOMIC_UFUNC:
        ufunc = _ATOMIC_UFUNC[op]
        if rows is None:
            ufunc.at(target, sel, _vals(0))
        else:
            ufunc.at(target, (rows[m], sel), _vals(0))
    elif op == "atomic_inc":
        if rows is None:
            np.add.at(target, sel, target.dtype.type(1))
        else:
            np.add.at(target, (rows[m], sel), target.dtype.type(1))
    elif op == "atomic_dec":
        if rows is None:
            np.subtract.at(target, sel, target.dtype.type(1))
        else:
            np.subtract.at(target, (rows[m], sel), target.dtype.type(1))
    elif op == "atomic_xchg":
        if rows is None:
            target[sel] = _vals(0)
        else:
            target[rows[m], sel] = _vals(0)
    elif op == "atomic_cmpxchg":
        cmp_v, new_v = _vals(0), _vals(1)
        if rows is None:
            cur = target[sel]
            target[sel] = np.where(cur == cmp_v, new_v, cur)
        else:
            cur = target[rows[m], sel]
            target[rows[m], sel] = np.where(cur == cmp_v, new_v, cur)
    else:  # pragma: no cover - sema rejects unknown atomics
        raise CLCRuntimeError(f"unknown atomic {op!r}")
    return old


def barrier(ctx, m) -> None:
    """Work-group barrier.  Lockstep vector execution satisfies barrier
    semantics automatically, but *divergent* barriers (not all work-items
    of a group reach it) are undefined behaviour in OpenCL — we detect and
    report them."""
    ctx.ops += count(m)  # a barrier is not free
    if ctx.group_size <= 1:
        return
    per_group = m.reshape(-1, ctx.group_size)
    group_any = per_group.any(axis=1)
    group_all = per_group.all(axis=1)
    if np.any(group_any & ~group_all):
        raise CLCRuntimeError(
            "divergent barrier: not all work-items of a group reached barrier()"
        )
