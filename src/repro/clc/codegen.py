"""SPMD-on-SIMD code generation: OpenCL C -> vectorised NumPy Python.

Every work-item of a dispatch chunk is a *lane*; variables are NumPy
scalars (uniform values) or arrays of shape ``(lanes,)``.  Control-flow
divergence is realised with an active-lane mask (``_m``) in the ispc
style:

* ``if``/``else`` partition the mask by the condition and merge after;
* loops iterate while any lane is active; ``continue`` parks lanes for the
  next iteration, ``break`` removes them until the loop exits;
* ``return`` removes lanes for the rest of the function and accumulates
  the return value under the mask.

The generated code is three-address style: every operation is a call into
:mod:`repro.clc.vecrt`, which also charges the op-accounting used by the
device cost model.  Deviations from C (documented): both arms of ``?:``
and both operands of ``&&``/``||`` are evaluated (vector semantics), so
side effects inside them happen unconditionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.clc import cast as A
from repro.clc.errors import CLCompileError
from repro.clc.sema import AnalyzedProgram, FunctionInfo, Symbol
from repro.clc.types import PointerType, ScalarType, VoidType

_BINOP_FN = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "<<": "shl",
    ">>": "shr",
    "&": "bitand",
    "|": "bitor",
    "^": "bitxor",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
    "&&": "and_",
    "||": "or_",
}


def _space_of(sym: Symbol) -> str:
    if isinstance(sym.type, PointerType):
        return sym.type.address_space
    return sym.address_space


class FunctionCodegen:
    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.lines: List[str] = []
        self.indent = 1
        self._temp = 0
        self._label = 0
        self.loop_stack: List[str] = []  # continue-mask variable names
        self.diverged = False

    # -- emission helpers ---------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def label(self) -> int:
        self._label += 1
        return self._label

    def fresh_mask_count(self) -> None:
        self.emit("_mn = _rt.count(_m)")

    # -- top level ------------------------------------------------------------
    def generate(self) -> str:
        info = self.info
        params = ", ".join(sym.slot for sym in info.param_symbols)
        header = f"def _fn_{info.name}(_ctx, _m, {params}):" if params else f"def _fn_{info.name}(_ctx, _m):"
        self.lines.append(header)
        self.emit("_mn = _rt.count(_m)")
        self.emit("_ret = _np.zeros_like(_m)")
        is_void = isinstance(info.return_type, VoidType)
        if not is_void:
            self.emit(f"_retv = _np.dtype('{info.return_type.dtype}').type(0)")
        self.visit_block(info.node.body)
        if not is_void:
            self.emit("return _retv")
        else:
            self.emit("return None")
        return "\n".join(self.lines)

    # -- statements --------------------------------------------------------
    def visit_block(self, block: A.Block) -> None:
        if not block.stmts:
            self.emit("pass")
            return
        for stmt in block.stmts:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self.visit_stmt(s)
            return
        if isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                self.visit_decl(decl)
            return
        if isinstance(stmt, A.ExprStmt):
            self.visit_expr(stmt.expr)
            return
        if isinstance(stmt, A.If):
            self.visit_if(stmt)
            return
        if isinstance(stmt, A.While):
            self.visit_while(stmt)
            return
        if isinstance(stmt, A.DoWhile):
            self.visit_do_while(stmt)
            return
        if isinstance(stmt, A.For):
            self.visit_for(stmt)
            return
        if isinstance(stmt, A.Break):
            self.emit("_m = _np.zeros_like(_m)")
            self.emit("_mn = 0")
            return
        if isinstance(stmt, A.Continue):
            cnt = self.loop_stack[-1]
            self.emit(f"{cnt} = {cnt} | _m")
            self.emit("_m = _np.zeros_like(_m)")
            self.emit("_mn = 0")
            return
        if isinstance(stmt, A.Return):
            if stmt.value is not None:
                v = self.visit_expr(stmt.value)
                self.emit(f"_retv = _rt.merge(_m, {v}, _retv)")
            self.emit("_ret = _ret | _m")
            self.emit("_m = _np.zeros_like(_m)")
            self.emit("_mn = 0")
            self.diverged = True
            return
        raise CLCompileError(f"codegen: unhandled statement {type(stmt).__name__}", stmt.line, stmt.col)

    def visit_decl(self, decl: A.VarDecl) -> None:
        sym: Symbol = decl.symbol
        if sym.kind == "array":
            elem = sym.type.pointee
            if sym.address_space == "local":
                self.emit(f"{sym.slot} = _ctx.local_array('{sym.slot}', '{elem.dtype}', {sym.array_size})")
            else:
                self.emit(f"{sym.slot} = _rt.private_array(_ctx, '{elem.dtype}', {sym.array_size})")
            return
        if isinstance(sym.type, PointerType):
            v = self.visit_expr(decl.init)
            self.emit(f"{sym.slot} = {v}")
            return
        if decl.init is not None:
            v = self.visit_expr(decl.init)
            if self.diverged:
                self.emit(f"{sym.slot} = _rt.merge(_m, {v}, _np.dtype('{sym.type.dtype}').type(0))")
            else:
                self.emit(f"{sym.slot} = {v}")
        else:
            self.emit(f"{sym.slot} = _np.dtype('{sym.type.dtype}').type(0)")

    def visit_if(self, stmt: A.If) -> None:
        c = self.visit_expr(stmt.cond)
        k = self.label()
        save, then_end = f"_msv{k}", f"_mth{k}"
        self.emit(f"{save} = _m")
        self.emit(f"_m = {save} & {c}")
        self.fresh_mask_count()
        self.diverged = True
        self.emit("if _mn:")
        self.indent += 1
        self.visit_block(stmt.then)
        self.indent -= 1
        self.emit(f"{then_end} = _m")
        if stmt.els is not None:
            self.emit(f"_m = {save} & _rt.not_({c}) & _rt.not_(_ret)")
            self.fresh_mask_count()
            self.emit("if _mn:")
            self.indent += 1
            self.visit_block(stmt.els)
            self.indent -= 1
            self.emit(f"_m = {then_end} | _m")
        else:
            self.emit(f"_m = ({save} & _rt.not_({c}) & _rt.not_(_ret)) | {then_end}")
        self.fresh_mask_count()

    def _loop_prologue(self) -> tuple:
        k = self.label()
        save, cnt = f"_msv{k}", f"_mcn{k}"
        self.emit(f"{save} = _m")
        self.diverged = True
        self.emit("while True:")
        self.indent += 1
        self.emit("if not _mn: break")
        return save, cnt

    def _loop_epilogue(self, save: str) -> None:
        self.indent -= 1
        self.emit(f"_m = {save} & _rt.not_(_ret)")
        self.fresh_mask_count()

    def visit_while(self, stmt: A.While) -> None:
        save, cnt = self._loop_prologue()
        c = self.visit_expr(stmt.cond)
        self.emit(f"_m = _m & {c}")
        self.fresh_mask_count()
        self.emit("if not _mn: break")
        self.emit(f"{cnt} = _np.zeros_like(_m)")
        self.loop_stack.append(cnt)
        self.visit_block(stmt.body)
        self.loop_stack.pop()
        self.emit(f"_m = _m | {cnt}")
        self.fresh_mask_count()
        self._loop_epilogue(save)

    def visit_do_while(self, stmt: A.DoWhile) -> None:
        save, cnt = self._loop_prologue()
        self.emit(f"{cnt} = _np.zeros_like(_m)")
        self.loop_stack.append(cnt)
        self.visit_block(stmt.body)
        self.loop_stack.pop()
        self.emit(f"_m = _m | {cnt}")
        self.fresh_mask_count()
        c = self.visit_expr(stmt.cond)
        self.emit(f"_m = _m & {c}")
        self.fresh_mask_count()
        self._loop_epilogue(save)

    def visit_for(self, stmt: A.For) -> None:
        if stmt.init is not None:
            self.visit_stmt(stmt.init)
        save, cnt = self._loop_prologue()
        if stmt.cond is not None:
            c = self.visit_expr(stmt.cond)
            self.emit(f"_m = _m & {c}")
            self.fresh_mask_count()
            self.emit("if not _mn: break")
        self.emit(f"{cnt} = _np.zeros_like(_m)")
        self.loop_stack.append(cnt)
        self.visit_block(stmt.body)
        self.loop_stack.pop()
        self.emit(f"_m = _m | {cnt}")
        self.fresh_mask_count()
        if stmt.step is not None:
            self.emit("if _mn:")
            self.indent += 1
            self.visit_expr(stmt.step)
            self.indent -= 1
        self._loop_epilogue(save)

    # -- expressions ---------------------------------------------------------
    def visit_expr(self, expr: A.Expr) -> str:
        method = getattr(self, f"gen_{type(expr).__name__}", None)
        if method is None:
            raise CLCompileError(f"codegen: unhandled expression {type(expr).__name__}", expr.line, expr.col)
        return method(expr)

    def gen_IntLiteral(self, expr: A.IntLiteral) -> str:
        return f"_np.dtype('{expr.type.dtype}').type({expr.value})"

    def gen_FloatLiteral(self, expr: A.FloatLiteral) -> str:
        return f"_np.dtype('{expr.type.dtype}').type({expr.value!r})"

    def gen_BoolLiteral(self, expr: A.BoolLiteral) -> str:
        return f"_np.bool_({expr.value})"

    def gen_VarRef(self, expr: A.VarRef) -> str:
        return expr.symbol.slot

    def gen_ImplicitCast(self, expr: A.ImplicitCast) -> str:
        v = self.visit_expr(expr.expr)
        t = self.temp()
        self.emit(f"{t} = _rt.cast(_ctx, _mn, {v}, '{expr.target_type.dtype}')")
        return t

    def gen_Cast(self, expr: A.Cast) -> str:
        v = self.visit_expr(expr.expr)
        t = self.temp()
        self.emit(f"{t} = _rt.cast(_ctx, _mn, {v}, '{expr.target_type.dtype}')")
        return t

    def gen_UnaryOp(self, expr: A.UnaryOp) -> str:
        if expr.op in ("++", "--"):
            new, _old = self._emit_incdec(expr.operand, expr.op)
            return new
        if expr.op == "&":
            raise CLCompileError(
                "address-of is only supported as the first argument of atomics",
                expr.line,
                expr.col,
            )
        v = self.visit_expr(expr.operand)
        if expr.op == "+":
            return v
        t = self.temp()
        if expr.op == "-":
            self.emit(f"{t} = _rt.neg(_ctx, _mn, {v})")
        elif expr.op == "~":
            self.emit(f"{t} = _rt.invert(_ctx, _mn, {v})")
        elif expr.op == "!":
            self.emit(f"{t} = _rt.not_({v})")
        else:  # pragma: no cover
            raise CLCompileError(f"codegen: unary {expr.op!r}", expr.line, expr.col)
        return t

    def gen_PostfixOp(self, expr: A.PostfixOp) -> str:
        _new, old = self._emit_incdec(expr.operand, expr.op)
        return old

    def _emit_incdec(self, target: A.Expr, op: str) -> tuple:
        """x++/++x desugared; returns (new_value_ref, old_value_ref)."""
        fn = "add" if op == "++" else "sub"
        t_type: ScalarType = target.type
        one = f"_np.dtype('{t_type.dtype}').type(1)"
        old = self.temp()
        if isinstance(target, A.VarRef):
            slot = target.symbol.slot
            self.emit(f"{old} = {slot}")
            new = self.temp()
            self.emit(f"{new} = _rt.{fn}(_ctx, _mn, {old}, {one})")
            self._store_var(target.symbol, new)
            return new, old
        # Index target
        base_sym, idx = self._index_parts(target)
        self.emit(f"{old} = {self._load_code(base_sym, idx)}")
        new = self.temp()
        self.emit(f"{new} = _rt.{fn}(_ctx, _mn, {old}, {one})")
        self._emit_store(base_sym, idx, new)
        return new, old

    def gen_BinaryOp(self, expr: A.BinaryOp) -> str:
        if expr.op == ",":
            self.visit_expr(expr.lhs)
            return self.visit_expr(expr.rhs)
        a = self.visit_expr(expr.lhs)
        b = self.visit_expr(expr.rhs)
        t = self.temp()
        if expr.op == "/":
            fn = "fdiv" if expr.type.is_float else "idiv"
        elif expr.op == "%":
            fn = "imod"
        else:
            fn = _BINOP_FN[expr.op]
        self.emit(f"{t} = _rt.{fn}(_ctx, _mn, {a}, {b})")
        return t

    def gen_Ternary(self, expr: A.Ternary) -> str:
        c = self.visit_expr(expr.cond)
        a = self.visit_expr(expr.then)
        b = self.visit_expr(expr.els)
        t = self.temp()
        self.emit(f"{t} = _rt.select(_ctx, _mn, {c}, {a}, {b})")
        return t

    # -- assignment ------------------------------------------------------------
    def _store_var(self, sym: Symbol, value_ref: str) -> None:
        if self.diverged:
            self.emit(f"{sym.slot} = _rt.merge(_m, {value_ref}, {sym.slot})")
        else:
            self.emit(f"{sym.slot} = {value_ref}")

    def _index_parts(self, expr: A.Index) -> tuple:
        base_sym: Symbol = expr.base.symbol
        idx = self.visit_expr(expr.index)
        return base_sym, idx

    def _load_code(self, sym: Symbol, idx: str) -> str:
        space = _space_of(sym)
        if space in ("global", "constant"):
            return f"_rt.load_global(_ctx, _mn, _m, {sym.slot}, {idx})"
        if space == "local":
            return f"_rt.load_local(_ctx, _mn, _m, {sym.slot}, {idx})"
        return f"_rt.load_private(_ctx, _mn, _m, {sym.slot}, {idx})"

    def _emit_store(self, sym: Symbol, idx: str, value_ref: str) -> None:
        space = _space_of(sym)
        if space in ("global", "constant"):
            self.emit(f"_rt.store_global(_ctx, _mn, _m, {sym.slot}, {idx}, {value_ref})")
        elif space == "local":
            self.emit(f"_rt.store_local(_ctx, _mn, _m, {sym.slot}, {idx}, {value_ref})")
        else:
            self.emit(f"_rt.store_private(_ctx, _mn, _m, {sym.slot}, {idx}, {value_ref})")

    def gen_Index(self, expr: A.Index) -> str:
        base_sym, idx = self._index_parts(expr)
        t = self.temp()
        self.emit(f"{t} = {self._load_code(base_sym, idx)}")
        return t

    def gen_Assign(self, expr: A.Assign) -> str:
        value = self.visit_expr(expr.value)
        target_t: ScalarType = expr.target.type
        common: ScalarType = expr.common_type
        if isinstance(expr.target, A.VarRef):
            sym = expr.target.symbol
            if expr.op == "=":
                result = value
            else:
                cur = sym.slot
                result = self._compound(cur, value, expr.op, common, target_t)
            self._store_var(sym, result)
            out = self.temp()
            self.emit(f"{out} = {sym.slot}")
            return out
        base_sym, idx = self._index_parts(expr.target)
        if expr.op == "=":
            result = value
        else:
            cur = self.temp()
            self.emit(f"{cur} = {self._load_code(base_sym, idx)}")
            result = self._compound(cur, value, expr.op, common, target_t)
        self._emit_store(base_sym, idx, result)
        return result

    def _compound(self, cur: str, value: str, op: str, common: ScalarType, target: ScalarType) -> str:
        base_op = op[:-1]
        lhs = cur
        if common != target:
            lhs = self.temp()
            self.emit(f"{lhs} = _rt.cast(_ctx, _mn, {cur}, '{common.dtype}')")
        t = self.temp()
        if base_op == "/":
            fn = "fdiv" if common.is_float else "idiv"
        elif base_op == "%":
            fn = "imod"
        else:
            fn = _BINOP_FN[base_op]
        self.emit(f"{t} = _rt.{fn}(_ctx, _mn, {lhs}, {value})")
        if common != target:
            back = self.temp()
            self.emit(f"{back} = _rt.cast(_ctx, _mn, {t}, '{target.dtype}')")
            return back
        return t

    # -- calls -------------------------------------------------------------------
    def gen_Call(self, expr: A.Call) -> str:
        if getattr(expr, "convert_type", None) is not None:
            v = self.visit_expr(expr.args[0])
            t = self.temp()
            self.emit(f"{t} = _rt.cast(_ctx, _mn, {v}, '{expr.convert_type.dtype}')")
            return t
        builtin = getattr(expr, "builtin", None)
        if builtin is not None:
            if builtin.kind == "workitem":
                t = self.temp()
                if builtin.name == "get_work_dim":
                    self.emit(f"{t} = _ctx.get_work_dim()")
                else:
                    d = self.visit_expr(expr.args[0])
                    self.emit(f"{t} = _ctx.{builtin.name}(_rt.uniform({d}))")
                return t
            if builtin.kind == "barrier":
                self.emit("_rt.barrier(_ctx, _m)")
                return "None"
            if builtin.kind == "math":
                args = ", ".join(self.visit_expr(a) for a in expr.args)
                t = self.temp()
                self.emit(
                    f"{t} = _rt.math(_ctx, _mn, '{builtin.impl}', {builtin.weight}, {args})"
                )
                return t
            if builtin.kind == "atomic":
                return self._gen_atomic(expr, builtin)
            raise CLCompileError(  # pragma: no cover
                f"codegen: builtin kind {builtin.kind!r}", expr.line, expr.col
            )
        info: FunctionInfo = expr.func
        args = [self.visit_expr(a) for a in expr.args]
        t = self.temp()
        arg_list = ", ".join(["_ctx", "_m"] + args)
        self.emit(f"{t} = _fn_{info.name}({arg_list})")
        return t

    def _gen_atomic(self, expr: A.Call, builtin) -> str:
        ptr = expr.args[0]
        if isinstance(ptr, A.UnaryOp) and ptr.op == "&" and isinstance(ptr.operand, A.Index):
            base_sym = ptr.operand.base.symbol
            idx = self.visit_expr(ptr.operand.index)
        elif isinstance(ptr, A.VarRef) and isinstance(ptr.type, PointerType):
            base_sym = ptr.symbol
            idx = "_np.int64(0)"
        else:
            raise CLCompileError(
                f"{expr.name}: first argument must be &buf[i] or a pointer variable",
                expr.line,
                expr.col,
            )
        space = _space_of(base_sym)
        kind = "global" if space in ("global", "constant") else space
        vals = [self.visit_expr(a) for a in expr.args[1:]]
        t = self.temp()
        val_part = (", " + ", ".join(vals)) if vals else ""
        self.emit(
            f"{t} = _rt.atomic(_ctx, _mn, _m, '{builtin.name}', '{kind}', {base_sym.slot}, {idx}{val_part})"
        )
        return t


MODULE_PRELUDE = '''\
"""Generated by repro.clc.codegen — do not edit."""
import numpy as _np
from repro.clc import vecrt as _rt
'''


def generate_module(analyzed: AnalyzedProgram) -> str:
    """Generate the Python module source for an analyzed program."""
    parts = [MODULE_PRELUDE]
    for info in analyzed.functions.values():
        parts.append(FunctionCodegen(info).generate())
        parts.append("")
    return "\n".join(parts)


def compile_module(analyzed: AnalyzedProgram) -> Dict[str, object]:
    """Exec the generated module; returns its namespace."""
    source = generate_module(analyzed)
    namespace: Dict[str, object] = {}
    code = compile(source, "<clc-codegen>", "exec")
    exec(code, namespace)
    namespace["__clc_source__"] = source
    return namespace
