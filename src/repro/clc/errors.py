"""Compiler and kernel-execution errors."""

from __future__ import annotations


class CLCompileError(Exception):
    """A front-end error (lexing, parsing, or semantic analysis).

    Carries source position so the OpenCL runtime can produce a build log
    (``clGetProgramBuildInfo``) pointing at the offending line.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        where = f"{line}:{col}: " if line else ""
        super().__init__(f"{where}{message}")


class CLCRuntimeError(Exception):
    """A kernel execution error (out-of-bounds access, bad argument
    binding, unbound local memory, ...)."""
