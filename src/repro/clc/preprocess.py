"""A minimal OpenCL C preprocessor.

Supports what the paper-era kernels actually use:

* ``//`` and ``/* ... */`` comments (stripped, newlines preserved so that
  diagnostics keep their line numbers),
* object-like ``#define NAME replacement`` macros,
* ``-D NAME`` / ``-D NAME=value`` build options (``clBuildProgram``),
* ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif`` conditionals,
* ``#undef``.

Function-like macros and ``#include`` are rejected with a clean compile
error (no host filesystem in a distributed build — the same restriction
real dOpenCL daemons face when sources are shipped over the wire).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.clc.errors import CLCompileError

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def parse_build_options(options: str) -> Dict[str, str]:
    """Extract ``-D`` macro definitions from a build options string."""
    macros: Dict[str, str] = {}
    tokens = options.split()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok == "-D":
            i += 1
            if i >= len(tokens):
                raise CLCompileError("build options: -D needs an argument")
            definition = tokens[i]
        elif tok.startswith("-D"):
            definition = tok[2:]
        elif tok.startswith("-cl-") or tok in ("-w", "-Werror"):
            i += 1
            continue  # recognised-but-ignored optimisation flags
        elif tok.startswith("-I"):
            raise CLCompileError("build options: -I include paths are not supported")
        else:
            raise CLCompileError(f"build options: unknown option {tok!r}")
        name, eq, value = definition.partition("=")
        if not _IDENT.fullmatch(name):
            raise CLCompileError(f"build options: bad macro name {name!r}")
        macros[name] = value if eq else "1"
        i += 1
    return macros


def strip_comments(source: str) -> str:
    """Remove comments, preserving line structure."""
    out: List[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                line = source.count("\n", 0, i) + 1
                raise CLCompileError("unterminated block comment", line)
            out.append("\n" * source.count("\n", i, end))
            i = end + 2
            continue
        else:
            out.append(ch)
            i += 1
            continue
    return "".join(out)


def preprocess(source: str, options: str = "") -> str:
    """Run the preprocessor; returns expanded source with stable line count."""
    macros = parse_build_options(options)
    text = strip_comments(source)
    lines = text.split("\n")
    out_lines: List[str] = []
    # Stack of (taken_now, any_branch_taken) for conditional nesting.
    cond_stack: List[Tuple[bool, bool]] = []

    def active() -> bool:
        return all(taken for taken, _ in cond_stack)

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            directive = stripped[1:].strip()
            out_lines.append("")  # keep line numbering stable
            if directive.startswith("define"):
                if not active():
                    continue
                body = directive[len("define") :].strip()
                m = _IDENT.match(body)
                if not m:
                    raise CLCompileError("malformed #define", lineno)
                name = m.group(0)
                rest = body[m.end() :]
                if rest.startswith("("):
                    raise CLCompileError(
                        f"function-like macro {name!r} is not supported", lineno
                    )
                macros[name] = rest.strip()
            elif directive.startswith("undef"):
                if not active():
                    continue
                name = directive[len("undef") :].strip()
                macros.pop(name, None)
            elif directive.startswith("ifdef"):
                name = directive[len("ifdef") :].strip()
                taken = active() and name in macros
                cond_stack.append((taken, taken))
            elif directive.startswith("ifndef"):
                name = directive[len("ifndef") :].strip()
                taken = active() and name not in macros
                cond_stack.append((taken, taken))
            elif directive.startswith("else"):
                if not cond_stack:
                    raise CLCompileError("#else without #ifdef", lineno)
                _, was_taken = cond_stack[-1]
                parent_active = all(t for t, _ in cond_stack[:-1])
                taken = parent_active and not was_taken
                cond_stack[-1] = (taken, was_taken or taken)
            elif directive.startswith("endif"):
                if not cond_stack:
                    raise CLCompileError("#endif without #ifdef", lineno)
                cond_stack.pop()
            elif directive.startswith("include"):
                raise CLCompileError("#include is not supported", lineno)
            elif directive.startswith("pragma"):
                pass  # e.g. OPENCL EXTENSION — accepted and ignored
            else:
                raise CLCompileError(f"unknown directive #{directive.split()[0]}", lineno)
            continue
        if not active():
            out_lines.append("")
            continue
        out_lines.append(_expand(line, macros))
    if cond_stack:
        raise CLCompileError("unterminated #ifdef", len(lines))
    return "\n".join(out_lines)


def _expand(line: str, macros: Dict[str, str], depth: int = 0) -> str:
    if depth > 16:
        raise CLCompileError("macro expansion too deep (recursive #define?)")
    if not macros:
        return line

    def sub(match: re.Match) -> str:
        name = match.group(0)
        if name in macros:
            return _expand(macros[name], {k: v for k, v in macros.items() if k != name}, depth + 1)
        return name

    return _IDENT.sub(sub, line)
