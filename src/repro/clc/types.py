"""The OpenCL C scalar type system and conversion rules.

Implements the parts of C99/OpenCL-C typing that kernels rely on: integer
promotion, usual arithmetic conversions, and explicit casts.  Each scalar
type maps onto a NumPy dtype so that the vector backend gets C-faithful
widths and wraparound (NumPy's own promotion rules differ from C, so the
semantic analyser decides every result type and the code generator inserts
explicit casts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class ScalarType:
    """A scalar OpenCL C type."""

    name: str
    dtype: str  # numpy dtype string
    rank: int  # promotion rank; higher wins
    is_float: bool
    signed: bool  # meaningful for integers only

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def size(self) -> int:
        return self.np_dtype.itemsize

    @property
    def is_integer(self) -> bool:
        return not self.is_float

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType:
    """A pointer into one of the OpenCL address spaces."""

    pointee: ScalarType
    address_space: str  # "global" | "local" | "constant" | "private"

    def __str__(self) -> str:
        return f"__{self.address_space} {self.pointee}*"


@dataclass(frozen=True)
class VoidType:
    name: str = "void"

    def __str__(self) -> str:
        return "void"


VOID = VoidType()

BOOL = ScalarType("bool", "bool", 0, False, False)
CHAR = ScalarType("char", "int8", 1, False, True)
UCHAR = ScalarType("uchar", "uint8", 1, False, False)
SHORT = ScalarType("short", "int16", 2, False, True)
USHORT = ScalarType("ushort", "uint16", 2, False, False)
INT = ScalarType("int", "int32", 3, False, True)
UINT = ScalarType("uint", "uint32", 3, False, False)
LONG = ScalarType("long", "int64", 4, False, True)
ULONG = ScalarType("ulong", "uint64", 4, False, False)
SIZE_T = ScalarType("size_t", "uint64", 4, False, False)
FLOAT = ScalarType("float", "float32", 5, True, True)
DOUBLE = ScalarType("double", "float64", 6, True, True)

#: Name -> type for declaration parsing (including common aliases).
SCALAR_TYPES: Dict[str, ScalarType] = {
    "bool": BOOL,
    "char": CHAR,
    "uchar": UCHAR,
    "unsigned char": UCHAR,
    "short": SHORT,
    "ushort": USHORT,
    "unsigned short": USHORT,
    "int": INT,
    "uint": UINT,
    "unsigned int": UINT,
    "unsigned": UINT,
    "long": LONG,
    "ulong": ULONG,
    "unsigned long": ULONG,
    "size_t": SIZE_T,
    "ptrdiff_t": LONG,
    "float": FLOAT,
    "double": DOUBLE,
}

ADDRESS_SPACES = ("global", "local", "constant", "private")


def integer_promote(t: ScalarType) -> ScalarType:
    """C integer promotion: anything narrower than int becomes int."""
    if t.is_float:
        return t
    if t.rank < INT.rank:
        return INT
    return t


def usual_arithmetic_conversions(a: ScalarType, b: ScalarType) -> ScalarType:
    """The C99 'usual arithmetic conversions' for a binary operator."""
    if a.is_float or b.is_float:
        if DOUBLE in (a, b):
            return DOUBLE
        return FLOAT
    a = integer_promote(a)
    b = integer_promote(b)
    if a == b:
        return a
    if a.signed == b.signed:
        return a if a.rank >= b.rank else b
    unsigned, signed = (a, b) if not a.signed else (b, a)
    if unsigned.rank >= signed.rank:
        return unsigned
    # Signed type can represent all unsigned values (e.g. long vs uint).
    return signed


def is_arithmetic(t: object) -> bool:
    return isinstance(t, ScalarType)


def common_type(a: ScalarType, b: ScalarType) -> ScalarType:
    """Alias used by the ternary operator and function-argument matching."""
    return usual_arithmetic_conversions(a, b)


def can_convert(src: object, dst: object) -> bool:
    """Implicit conversion admissibility."""
    if src == dst:
        return True
    if isinstance(src, ScalarType) and isinstance(dst, ScalarType):
        return True  # all scalar conversions are implicit in C
    if isinstance(src, PointerType) and isinstance(dst, PointerType):
        return src.pointee == dst.pointee  # allow address-space-lax matches
    return False


def type_from_literal_suffix(text: str) -> Optional[ScalarType]:
    """Type of an integer literal from its suffix (``u``, ``l``, ``ul``)."""
    suffix = ""
    body = text.lower()
    while body and body[-1] in "ul":
        suffix = body[-1] + suffix
        body = body[:-1]
    if "u" in suffix and "l" in suffix:
        return ULONG
    if "l" in suffix:
        return LONG
    if "u" in suffix:
        return UINT
    return None
