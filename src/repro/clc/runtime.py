"""NDRange dispatch: argument binding, work-item IDs, chunking, accounting.

The vector backend executes all work-items of a *chunk* (a whole number of
work-groups) in lockstep as NumPy lanes.  The execution context provides
work-item ID arrays, local-memory allocation and the op accumulator that
feeds the device cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clc.errors import CLCRuntimeError
from repro.clc.types import PointerType, ScalarType


@dataclass(frozen=True)
class NDRange:
    """A validated kernel index space (OpenCL 1.1 rules: the local size
    must divide the global size in every dimension)."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    global_offset: Tuple[int, ...]

    @staticmethod
    def create(
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        global_offset: Optional[Sequence[int]] = None,
    ) -> "NDRange":
        gs = tuple(int(g) for g in global_size)
        if not 1 <= len(gs) <= 3:
            raise CLCRuntimeError(f"work dimensions must be 1..3, got {len(gs)}")
        if any(g <= 0 for g in gs):
            raise CLCRuntimeError(f"global size must be positive, got {gs}")
        if local_size is None:
            ls = tuple(_default_local(g, i == 0) for i, g in enumerate(gs))
        else:
            ls = tuple(int(v) for v in local_size)
            if len(ls) != len(gs):
                raise CLCRuntimeError("local size dimensionality mismatch")
            if any(v <= 0 for v in ls):
                raise CLCRuntimeError(f"local size must be positive, got {ls}")
            if any(g % v for g, v in zip(gs, ls)):
                raise CLCRuntimeError(
                    f"local size {ls} does not divide global size {gs}"
                )
        off = tuple(int(v) for v in (global_offset or (0,) * len(gs)))
        if len(off) != len(gs):
            raise CLCRuntimeError("global offset dimensionality mismatch")
        return NDRange(gs, ls, off)

    @property
    def work_dim(self) -> int:
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        n = 1
        for g in self.global_size:
            n *= g
        return n

    @property
    def group_size(self) -> int:
        n = 1
        for v in self.local_size:
            n *= v
        return n

    @property
    def num_groups(self) -> Tuple[int, ...]:
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))

    @property
    def total_groups(self) -> int:
        n = 1
        for g in self.num_groups:
            n *= g
        return n


def _default_local(g: int, first_dim: bool) -> int:
    """Pick a local size: the largest divisor of ``g`` up to 256 for the
    first dimension (1 for the rest), mirroring a typical runtime choice."""
    if not first_dim:
        return 1
    best = 1
    for cand in range(1, min(g, 256) + 1):
        if g % cand == 0:
            best = cand
    return best


class LocalMemory:
    """Placeholder argument for ``__local`` kernel parameters
    (``clSetKernelArg`` with a size and NULL pointer)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise CLCRuntimeError(f"local memory size must be positive, got {nbytes}")
        self.nbytes = int(nbytes)


@dataclass
class ExecutionStats:
    """Work accounting from one kernel dispatch (drives the cost model)."""

    ops: float = 0.0
    work_items: int = 0
    chunks: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.ops += other.ops
        self.work_items += other.work_items
        self.chunks += other.chunks


class ExecContext:
    """Per-chunk execution state handed to generated vector code."""

    def __init__(self, nd: NDRange, group_start: int, group_count: int) -> None:
        self.nd = nd
        self.group_size = nd.group_size
        self.lanes = group_count * nd.group_size
        self.ops = 0.0
        self.lane_ids = np.arange(self.lanes)
        lin = np.arange(group_start * nd.group_size, (group_start + group_count) * nd.group_size)
        group_lin = lin // nd.group_size
        local_lin = lin % nd.group_size
        self.group_ordinal = group_lin - group_start
        self._group_ids: List[np.ndarray] = []
        self._local_ids: List[np.ndarray] = []
        self._global_ids: List[np.ndarray] = []
        g_rest, l_rest = group_lin, local_lin
        for d in range(nd.work_dim):
            ng, nl = nd.num_groups[d], nd.local_size[d]
            gc = g_rest % ng
            lc = l_rest % nl
            g_rest = g_rest // ng
            l_rest = l_rest // nl
            self._group_ids.append(gc.astype(np.uint64))
            self._local_ids.append(lc.astype(np.uint64))
            self._global_ids.append(
                (gc * nl + lc + nd.global_offset[d]).astype(np.uint64)
            )
        self._local_arrays: Dict[str, np.ndarray] = {}
        self._group_count = group_count

    # -- work-item functions -------------------------------------------------
    def _dim_ok(self, d: int) -> bool:
        return 0 <= d < self.nd.work_dim

    def get_work_dim(self) -> np.uint64:
        return np.uint32(self.nd.work_dim)

    def get_global_id(self, d: int) -> np.ndarray:
        if not self._dim_ok(d):
            return np.uint64(0)
        return self._global_ids[d]

    def get_local_id(self, d: int) -> np.ndarray:
        if not self._dim_ok(d):
            return np.uint64(0)
        return self._local_ids[d]

    def get_group_id(self, d: int) -> np.ndarray:
        if not self._dim_ok(d):
            return np.uint64(0)
        return self._group_ids[d]

    def get_global_size(self, d: int) -> np.uint64:
        if not self._dim_ok(d):
            return np.uint64(1)
        return np.uint64(self.nd.global_size[d])

    def get_local_size(self, d: int) -> np.uint64:
        if not self._dim_ok(d):
            return np.uint64(1)
        return np.uint64(self.nd.local_size[d])

    def get_num_groups(self, d: int) -> np.uint64:
        if not self._dim_ok(d):
            return np.uint64(1)
        return np.uint64(self.nd.num_groups[d])

    def get_global_offset(self, d: int) -> np.uint64:
        if not self._dim_ok(d):
            return np.uint64(0)
        return np.uint64(self.nd.global_offset[d])

    # -- local memory -------------------------------------------------------
    def local_array(self, slot: str, dtype: str, size: int) -> np.ndarray:
        arr = self._local_arrays.get(slot)
        if arr is None:
            arr = np.zeros((self._group_count, size), dtype=np.dtype(dtype))
            self._local_arrays[slot] = arr
        return arr

    def local_arg_array(self, dtype: str, elems: int) -> np.ndarray:
        return np.zeros((self._group_count, elems), dtype=np.dtype(dtype))


def bind_args(kernel_info, args: Sequence[object]) -> List[object]:
    """Validate and convert user-supplied kernel arguments.

    Buffers must be 1-D NumPy arrays with the exact pointee dtype; scalars
    are converted to the declared NumPy scalar type; ``__local`` pointer
    parameters take :class:`LocalMemory` placeholders.
    """
    params = kernel_info.param_symbols
    if len(args) != len(params):
        raise CLCRuntimeError(
            f"kernel {kernel_info.name!r} expects {len(params)} argument(s), got {len(args)}"
        )
    bound: List[object] = []
    for i, (arg, sym) in enumerate(zip(args, params)):
        if isinstance(sym.type, PointerType):
            if sym.type.address_space == "local":
                if not isinstance(arg, LocalMemory):
                    raise CLCRuntimeError(
                        f"argument {i} of {kernel_info.name!r} is __local; pass LocalMemory(nbytes)"
                    )
                bound.append(arg)
                continue
            if not isinstance(arg, np.ndarray) or arg.ndim != 1:
                raise CLCRuntimeError(
                    f"argument {i} of {kernel_info.name!r} must be a 1-D ndarray"
                )
            want = sym.type.pointee.np_dtype
            if arg.dtype != want:
                raise CLCRuntimeError(
                    f"argument {i} of {kernel_info.name!r}: dtype {arg.dtype} != {want}"
                )
            bound.append(arg)
        else:
            scalar_t: ScalarType = sym.type
            try:
                bound.append(scalar_t.np_dtype.type(arg))
            except (TypeError, ValueError) as exc:
                raise CLCRuntimeError(
                    f"argument {i} of {kernel_info.name!r}: cannot convert {arg!r} to {scalar_t}"
                ) from exc
    return bound


def execute_kernel(
    kernel,
    global_size: Sequence[int],
    args: Sequence[object],
    local_size: Optional[Sequence[int]] = None,
    global_offset: Optional[Sequence[int]] = None,
    backend: str = "vector",
    max_lanes: int = 1 << 16,
) -> ExecutionStats:
    """Execute a :class:`~repro.clc.driver.CompiledKernel` over an NDRange.

    ``backend`` is ``"vector"`` (production) or ``"interp"`` (reference).
    Returns the :class:`ExecutionStats` consumed by the device cost model.
    """
    nd = NDRange.create(global_size, local_size, global_offset)
    bound = bind_args(kernel.info, args)
    if backend == "interp":
        from repro.clc.interp import execute_interp

        return execute_interp(kernel, nd, bound)
    if backend != "vector":
        raise CLCRuntimeError(f"unknown backend {backend!r}")

    stats = ExecutionStats()
    groups_per_chunk = max(1, max_lanes // nd.group_size)
    total_groups = nd.total_groups
    start = 0
    param_syms = kernel.info.param_symbols
    with np.errstate(all="ignore"):
        while start < total_groups:
            count = min(groups_per_chunk, total_groups - start)
            ctx = ExecContext(nd, start, count)
            chunk_args: List[object] = []
            for sym, value in zip(param_syms, bound):
                if isinstance(value, LocalMemory):
                    elems = value.nbytes // sym.type.pointee.size
                    if elems <= 0:
                        raise CLCRuntimeError(
                            f"local argument {sym.name!r}: {value.nbytes} bytes is less "
                            f"than one {sym.type.pointee} element"
                        )
                    chunk_args.append(ctx.local_arg_array(sym.type.pointee.dtype, elems))
                else:
                    chunk_args.append(value)
            mask = np.ones(ctx.lanes, dtype=bool)
            kernel.vector_fn(ctx, mask, *chunk_args)
            stats.ops += ctx.ops
            stats.work_items += ctx.lanes
            stats.chunks += 1
            start += count
    return stats
