"""AST node definitions for the OpenCL C subset (``cast`` = C AST).

Expression nodes grow a ``.type`` attribute during semantic analysis;
variable references grow a ``.symbol`` binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clc.types import PointerType, ScalarType


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int
    explicit_type: Optional[ScalarType] = None


@dataclass
class FloatLiteral(Expr):
    value: float
    explicit_type: Optional[ScalarType] = None


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class UnaryOp(Expr):
    op: str  # "-" "+" "!" "~" "++" "--" (prefix)
    operand: Expr


@dataclass
class PostfixOp(Expr):
    op: str  # "++" "--"
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str  # "=", "+=", ...
    target: Expr  # VarRef or Index
    value: Expr


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]


@dataclass
class Cast(Expr):
    target_type: object  # ScalarType
    expr: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    els: Expr


@dataclass
class ImplicitCast(Expr):
    """Inserted by sema to realise C conversion rules in the backends."""

    target_type: ScalarType
    expr: Expr


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Node):
    name: str
    var_type: object  # ScalarType or PointerType
    init: Optional[Expr] = None
    address_space: str = "private"
    array_size: Optional[int] = None  # fixed-size array declaration
    is_const: bool = False


@dataclass
class DeclStmt(Stmt):
    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    els: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class DoWhile(Stmt):
    body: Block = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # DeclStmt or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Block = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
@dataclass
class ParamDecl(Node):
    name: str
    param_type: object  # ScalarType or PointerType
    is_const: bool = False


@dataclass
class FuncDef(Node):
    name: str
    return_type: object  # ScalarType or VoidType
    params: List[ParamDecl] = field(default_factory=list)
    body: Block = None
    is_kernel: bool = False


@dataclass
class Program(Node):
    functions: List[FuncDef] = field(default_factory=list)
