"""Recursive descent parser for the OpenCL C subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.clc import cast as A
from repro.clc.errors import CLCompileError
from repro.clc.lexer import Token, tokenize
from repro.clc.types import (
    ADDRESS_SPACES,
    FLOAT,
    DOUBLE,
    PointerType,
    SCALAR_TYPES,
    ScalarType,
    VOID,
    type_from_literal_suffix,
)

_TYPE_START_KEYWORDS = frozenset(SCALAR_TYPES) | {
    "void",
    "signed",
    "const",
    "volatile",
    "restrict",
    "__global",
    "global",
    "__local",
    "local",
    "__constant",
    "constant",
    "__private",
    "private",
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        if self.cur.text != text or self.cur.kind == "eof":
            raise CLCompileError(
                f"expected {text!r}, found {self.cur.text or 'end of input'!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    def accept(self, text: str) -> Optional[Token]:
        if self.cur.kind != "eof" and self.cur.text == text:
            return self.advance()
        return None

    def error(self, message: str) -> CLCompileError:
        return CLCompileError(message, self.cur.line, self.cur.col)

    # -- types ------------------------------------------------------------
    def at_type(self) -> bool:
        t = self.cur
        return t.kind == "keyword" and t.text in _TYPE_START_KEYWORDS

    def parse_qualified_type(self) -> Tuple[object, str, bool]:
        """Parse qualifiers + base type (+ optional ``*``).

        Returns ``(type, address_space, is_const)``.
        """
        address_space = "private"
        explicit_space = False
        is_const = False
        base: Optional[object] = None
        while True:
            t = self.cur
            if t.kind != "keyword":
                break
            text = t.text.lstrip("_")
            if text in ADDRESS_SPACES and (t.text.startswith("__") or t.text in ADDRESS_SPACES):
                address_space = text
                explicit_space = True
                self.advance()
            elif t.text == "const":
                is_const = True
                self.advance()
            elif t.text in ("volatile", "restrict", "signed"):
                self.advance()
            elif t.text == "void":
                self.advance()
                base = VOID
                break
            elif t.text == "unsigned":
                self.advance()
                if self.cur.kind == "keyword" and self.cur.text in ("char", "short", "int", "long"):
                    base = SCALAR_TYPES["unsigned " + self.advance().text]
                else:
                    base = SCALAR_TYPES["unsigned"]
                break
            elif t.text in SCALAR_TYPES:
                base = SCALAR_TYPES[self.advance().text]
                break
            else:
                break
        if base is None:
            raise self.error(f"expected a type, found {self.cur.text!r}")
        # trailing qualifiers (e.g. "float const")
        while self.cur.kind == "keyword" and self.cur.text in ("const", "volatile", "restrict"):
            if self.cur.text == "const":
                is_const = True
            self.advance()
        if self.accept("*"):
            if base is VOID:
                raise self.error("void* is not supported")
            # "restrict"/"const" after the star
            while self.cur.kind == "keyword" and self.cur.text in ("const", "volatile", "restrict"):
                self.advance()
            if address_space == "private" and not explicit_space:
                # A pointer with no explicit space defaults to global in our
                # subset (kernels in the wild always annotate; be lenient).
                address_space = "global"
            return PointerType(base, address_space), address_space, is_const
        return base, address_space, is_const

    # -- top level ----------------------------------------------------------
    def parse_program(self) -> A.Program:
        functions: List[A.FuncDef] = []
        while self.cur.kind != "eof":
            functions.append(self.parse_function())
        return A.Program(functions=functions)

    def parse_function(self) -> A.FuncDef:
        line, col = self.cur.line, self.cur.col
        is_kernel = False
        while self.cur.kind == "keyword" and self.cur.text in ("__kernel", "kernel"):
            is_kernel = True
            self.advance()
        if self.cur.kind == "keyword" and self.cur.text in ("struct", "typedef"):
            raise self.error(f"{self.cur.text!r} is not supported in this subset")
        ret_type, _space, _const = self.parse_qualified_type()
        if isinstance(ret_type, PointerType):
            raise self.error("pointer return types are not supported")
        name_tok = self.cur
        if name_tok.kind != "ident":
            raise self.error(f"expected function name, found {name_tok.text!r}")
        self.advance()
        self.expect("(")
        params: List[A.ParamDecl] = []
        if not self.accept(")"):
            while True:
                if self.cur.kind == "keyword" and self.cur.text == "void" and self.peek().text == ")":
                    self.advance()
                    break
                params.append(self.parse_param())
                if not self.accept(","):
                    break
            self.expect(")")
        body = self.parse_block()
        return A.FuncDef(
            name=name_tok.text,
            return_type=ret_type,
            params=params,
            body=body,
            is_kernel=is_kernel,
            line=line,
            col=col,
        )

    def parse_param(self) -> A.ParamDecl:
        line, col = self.cur.line, self.cur.col
        ptype, _space, is_const = self.parse_qualified_type()
        if ptype is VOID:
            raise self.error("void parameter")
        name = ""
        if self.cur.kind == "ident":
            name = self.advance().text
        return A.ParamDecl(name=name, param_type=ptype, is_const=is_const, line=line, col=col)

    # -- statements ---------------------------------------------------------
    def parse_block(self) -> A.Block:
        line, col = self.cur.line, self.cur.col
        self.expect("{")
        stmts: List[A.Stmt] = []
        while not self.accept("}"):
            if self.cur.kind == "eof":
                raise self.error("unexpected end of input inside block")
            stmts.append(self.parse_statement())
        return A.Block(stmts=stmts, line=line, col=col)

    def parse_statement(self) -> A.Stmt:
        t = self.cur
        if t.text == "{":
            return self.parse_block()
        if t.kind == "keyword":
            if t.text in ("struct", "typedef"):
                raise self.error(f"{t.text!r} is not supported in this subset")
            if t.text == "if":
                return self.parse_if()
            if t.text == "while":
                return self.parse_while()
            if t.text == "do":
                return self.parse_do_while()
            if t.text == "for":
                return self.parse_for()
            if t.text == "break":
                self.advance()
                self.expect(";")
                return A.Break(line=t.line, col=t.col)
            if t.text == "continue":
                self.advance()
                self.expect(";")
                return A.Continue(line=t.line, col=t.col)
            if t.text == "return":
                self.advance()
                value = None if self.cur.text == ";" else self.parse_expr()
                self.expect(";")
                return A.Return(value=value, line=t.line, col=t.col)
            if self.at_type():
                decl = self.parse_declaration()
                self.expect(";")
                return decl
        if self.accept(";"):
            return A.Block(stmts=[], line=t.line, col=t.col)
        expr = self.parse_expr()
        self.expect(";")
        return A.ExprStmt(expr=expr, line=t.line, col=t.col)

    def parse_declaration(self) -> A.DeclStmt:
        line, col = self.cur.line, self.cur.col
        base_type, space, is_const = self.parse_qualified_type()
        if base_type is VOID:
            raise self.error("cannot declare a void variable")
        decls: List[A.VarDecl] = []
        while True:
            name_tok = self.cur
            if name_tok.kind != "ident":
                raise self.error(f"expected variable name, found {name_tok.text!r}")
            self.advance()
            array_size: Optional[int] = None
            if self.accept("["):
                size_tok = self.cur
                if size_tok.kind != "int":
                    raise self.error("array size must be an integer literal")
                self.advance()
                array_size = int(size_tok.text.rstrip("uUlL"), 0)
                if array_size <= 0:
                    raise CLCompileError("array size must be positive", size_tok.line, size_tok.col)
                self.expect("]")
            init: Optional[A.Expr] = None
            if self.accept("="):
                if self.cur.text == "{":
                    raise self.error("initialiser lists are not supported")
                init = self.parse_assignment()
            decls.append(
                A.VarDecl(
                    name=name_tok.text,
                    var_type=base_type,
                    init=init,
                    address_space=space,
                    array_size=array_size,
                    is_const=is_const,
                    line=name_tok.line,
                    col=name_tok.col,
                )
            )
            if not self.accept(","):
                break
        return A.DeclStmt(decls=decls, line=line, col=col)

    def parse_if(self) -> A.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self._statement_as_block()
        els = None
        if self.accept("else"):
            els = self._statement_as_block()
        return A.If(cond=cond, then=then, els=els, line=tok.line, col=tok.col)

    def _statement_as_block(self) -> A.Block:
        stmt = self.parse_statement()
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block(stmts=[stmt], line=stmt.line, col=stmt.col)

    def parse_while(self) -> A.While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self._statement_as_block()
        return A.While(cond=cond, body=body, line=tok.line, col=tok.col)

    def parse_do_while(self) -> A.DoWhile:
        tok = self.expect("do")
        body = self._statement_as_block()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return A.DoWhile(body=body, cond=cond, line=tok.line, col=tok.col)

    def parse_for(self) -> A.For:
        tok = self.expect("for")
        self.expect("(")
        init: Optional[A.Stmt] = None
        if not self.accept(";"):
            if self.at_type():
                init = self.parse_declaration()
            else:
                init = A.ExprStmt(expr=self.parse_expr(), line=self.cur.line, col=self.cur.col)
            self.expect(";")
        cond = None
        if not self.accept(";"):
            cond = self.parse_expr()
            self.expect(";")
        step = None
        if self.cur.text != ")":
            step = self.parse_expr()
        self.expect(")")
        body = self._statement_as_block()
        return A.For(init=init, cond=cond, step=step, body=body, line=tok.line, col=tok.col)

    # -- expressions ----------------------------------------------------------
    # Precedence climbing with the C precedence table.
    _BINARY_PRECEDENCE = {
        "||": 1,
        "&&": 2,
        "|": 3,
        "^": 4,
        "&": 5,
        "==": 6,
        "!=": 6,
        "<": 7,
        ">": 7,
        "<=": 7,
        ">=": 7,
        "<<": 8,
        ">>": 8,
        "+": 9,
        "-": 9,
        "*": 10,
        "/": 10,
        "%": 10,
    }

    def parse_expr(self) -> A.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            rhs = self.parse_assignment()
            expr = A.BinaryOp(op=",", lhs=expr, rhs=rhs, line=rhs.line, col=rhs.col)
        return expr

    def parse_assignment(self) -> A.Expr:
        lhs = self.parse_ternary()
        if self.cur.kind == "op" and self.cur.text in _ASSIGN_OPS:
            op_tok = self.advance()
            rhs = self.parse_assignment()  # right associative
            if not isinstance(lhs, (A.VarRef, A.Index)):
                raise CLCompileError("assignment target must be a variable or element", op_tok.line, op_tok.col)
            return A.Assign(op=op_tok.text, target=lhs, value=rhs, line=op_tok.line, col=op_tok.col)
        return lhs

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_assignment()
            self.expect(":")
            els = self.parse_assignment()
            return A.Ternary(cond=cond, then=then, els=els, line=cond.line, col=cond.col)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        lhs = self.parse_unary()
        while True:
            t = self.cur
            prec = self._BINARY_PRECEDENCE.get(t.text) if t.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = A.BinaryOp(op=t.text, lhs=lhs, rhs=rhs, line=t.line, col=t.col)

    def parse_unary(self) -> A.Expr:
        t = self.cur
        if t.kind == "op" and t.text in ("-", "+", "!", "~", "&"):
            self.advance()
            operand = self.parse_unary()
            return A.UnaryOp(op=t.text, operand=operand, line=t.line, col=t.col)
        if t.kind == "op" and t.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return A.UnaryOp(op=t.text, operand=operand, line=t.line, col=t.col)
        if t.text == "(" and self._is_cast_ahead():
            self.advance()
            target, _space, _const = self.parse_qualified_type()
            if isinstance(target, PointerType) or target is VOID:
                raise CLCompileError("only scalar casts are supported", t.line, t.col)
            self.expect(")")
            operand = self.parse_unary()
            return A.Cast(target_type=target, expr=operand, line=t.line, col=t.col)
        return self.parse_postfix()

    def _is_cast_ahead(self) -> bool:
        """Lookahead: '(' followed by a type keyword."""
        nxt = self.peek()
        return nxt.kind == "keyword" and nxt.text in _TYPE_START_KEYWORDS

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            t = self.cur
            if t.text == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = A.Index(base=expr, index=index, line=t.line, col=t.col)
            elif t.kind == "op" and t.text in ("++", "--"):
                self.advance()
                expr = A.PostfixOp(op=t.text, operand=expr, line=t.line, col=t.col)
            elif t.text == ".":
                raise CLCompileError("member access is not supported (no structs/vectors)", t.line, t.col)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        t = self.cur
        if t.kind == "int":
            self.advance()
            explicit = type_from_literal_suffix(t.text)
            return A.IntLiteral(
                value=int(t.text.rstrip("uUlL"), 0), explicit_type=explicit, line=t.line, col=t.col
            )
        if t.kind == "float":
            self.advance()
            text = t.text
            is_single = text[-1] in "fF"
            if is_single:
                text = text[:-1]
            return A.FloatLiteral(
                value=float(text),
                explicit_type=FLOAT if is_single else DOUBLE,
                line=t.line,
                col=t.col,
            )
        if t.kind == "keyword" and t.text in ("true", "false"):
            self.advance()
            return A.BoolLiteral(value=(t.text == "true"), line=t.line, col=t.col)
        if t.kind == "keyword" and t.text == "sizeof":
            self.advance()
            self.expect("(")
            target, _space, _const = self.parse_qualified_type()
            self.expect(")")
            if isinstance(target, PointerType):
                size = 8  # pointers are 64-bit in this substrate
            elif target is VOID:
                raise CLCompileError("sizeof(void) is invalid", t.line, t.col)
            else:
                size = target.size
            from repro.clc.types import SIZE_T

            return A.IntLiteral(value=size, explicit_type=SIZE_T, line=t.line, col=t.col)
        if t.kind == "ident":
            self.advance()
            if self.cur.text == "(":
                self.advance()
                args: List[A.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return A.Call(name=t.text, args=args, line=t.line, col=t.col)
            return A.VarRef(name=t.text, line=t.line, col=t.col)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"unexpected token {t.text!r} in expression")


def parse(source: str) -> A.Program:
    """Parse preprocessed source into an AST."""
    return Parser(tokenize(source)).parse_program()
