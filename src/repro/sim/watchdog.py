"""Sim-clock watchdog helpers: bounded waits that fail fast.

A test that waits on a :class:`~repro.sim.channel.Channel` which never
delivers hangs pytest (or trips the environment's generic
``max_steps`` limit with no context).  These helpers bound the wait in
*simulated* time and raise :class:`~repro.sim.errors.WatchdogTimeout`
with a diagnostic naming what was being waited for, so a future
deadlock is a red test with a message instead of a stuck process.

Two call styles are supported:

* From test code that owns the event loop —
  :func:`get_within` / :func:`drain_within` drive ``env.run`` themselves.
* From inside a process generator —
  ``value = yield from guarded(env, event, deadline, "label")``.
"""

from __future__ import annotations

from typing import Any, List

from repro.sim.channel import Channel
from repro.sim.errors import WatchdogTimeout
from repro.sim.process import Environment, SimEvent


def get_within(env: Environment, channel: Channel, deadline: float, label: str = "") -> Any:
    """One bounded ``channel.get()``: drive the environment until the item
    arrives or ``deadline`` simulated seconds elapse (then raise
    :class:`WatchdogTimeout` naming ``label``)."""
    ev = channel.get()
    guard = env.timeout(deadline)
    env.run(until=env.any_of([ev, guard]))
    if ev.triggered:
        if ev.ok:
            return ev.value
        raise ev.value
    raise WatchdogTimeout(
        f"watchdog: no item on channel {channel.name or label!r} "
        f"within {deadline} simulated seconds ({label or 'get'})"
    )


def drain_within(
    env: Environment, channel: Channel, n_items: int, deadline: float, label: str = ""
) -> List[Any]:
    """Collect ``n_items`` from ``channel`` under one shared deadline.

    The deadline covers the whole drain (it is *not* per item); on expiry
    the raised :class:`WatchdogTimeout` reports how many items made it.
    """
    items: List[Any] = []
    guard = env.timeout(deadline)
    while len(items) < n_items:
        ev = channel.get()
        env.run(until=env.any_of([ev, guard]))
        if not ev.triggered:
            raise WatchdogTimeout(
                f"watchdog: drained {len(items)}/{n_items} items from channel "
                f"{channel.name or label!r} before the {deadline}s deadline "
                f"({label or 'drain'})"
            )
        if not ev.ok:
            raise ev.value
        items.append(ev.value)
    return items


def guarded(env: Environment, event: SimEvent, deadline: float, label: str = ""):
    """Process-side bounded wait: ``value = yield from guarded(...)``.

    Yields an ``any_of`` over the event and a deadline timeout; if the
    deadline wins, raises :class:`WatchdogTimeout` inside the process.
    """
    guard = env.timeout(deadline)
    yield env.any_of([event, guard])
    if event.triggered:
        return event.value
    raise WatchdogTimeout(
        f"watchdog: event not triggered within {deadline} simulated seconds "
        f"({label or 'guarded wait'})"
    )
