"""Deterministic virtual-time simulation kernel.

This package provides the two timing models the reproduction is built on:

* **Client-driven timestamping** (:mod:`repro.sim.clock`,
  :mod:`repro.sim.timeline`): every logical entity (an application thread, a
  daemon, a device, a NIC) owns a clock and/or an interval timeline.  API
  calls advance clocks; shared resources serialise work through first-fit
  interval allocation, which makes contention results independent of the
  *real* execution order of the simulated clients.

* **Generator-based processes** (:mod:`repro.sim.process`,
  :mod:`repro.sim.channel`): a miniature SimPy-style discrete-event engine
  used where genuinely concurrent control flow is required (the SPMD
  mini-MPI baseline).

Both models share one unit of time: seconds, as ``float``.
"""

from repro.sim.clock import VirtualClock
from repro.sim.errors import SimulationError, ProcessKilled
from repro.sim.eventqueue import EventQueue
from repro.sim.timeline import Interval, Timeline
from repro.sim.process import Environment, Process, SimEvent, Timeout
from repro.sim.channel import Channel, ChannelClosed

__all__ = [
    "Channel",
    "ChannelClosed",
    "Environment",
    "EventQueue",
    "Interval",
    "Process",
    "ProcessKilled",
    "SimEvent",
    "SimulationError",
    "Timeline",
    "Timeout",
    "VirtualClock",
]
