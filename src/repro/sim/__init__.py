"""Deterministic virtual-time simulation kernel.

This package provides the two timing models the reproduction is built on:

* **Client-driven timestamping** (:mod:`repro.sim.clock`,
  :mod:`repro.sim.timeline`): every logical entity (an application thread, a
  daemon, a device, a NIC) owns a clock and/or an interval timeline.  API
  calls advance clocks; shared resources serialise work through first-fit
  interval allocation, which makes contention results independent of the
  *real* execution order of the simulated clients.

* **Generator-based processes** (:mod:`repro.sim.process`,
  :mod:`repro.sim.channel`): a miniature SimPy-style discrete-event engine
  used where genuinely concurrent control flow is required (the SPMD
  mini-MPI baseline).

Both models share one unit of time: seconds, as ``float``.
"""

from repro.sim.clock import VirtualClock
from repro.sim.errors import (
    CommunicationError,
    ProcessKilled,
    SimulationError,
    WatchdogTimeout,
)
from repro.sim.eventqueue import EventQueue
from repro.sim.timeline import Interval, Timeline
from repro.sim.process import Environment, Process, SimEvent, Timeout
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.watchdog import drain_within, get_within, guarded

#: Names served lazily from :mod:`repro.sim.faults` (PEP 562): the fault
#: module raises :mod:`repro.net.link` error classes, and ``repro.net``
#: imports the hardware layer, which imports this package — eagerly
#: importing faults here would close that cycle at import time.
_FAULT_EXPORTS = ("FaultAction", "FaultInjector", "FaultPlan", "install_fault_injector")


def __getattr__(name: str):
    """Lazy re-export of the fault-injection API (see ``_FAULT_EXPORTS``)."""
    if name in _FAULT_EXPORTS:
        from repro.sim import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Channel",
    "ChannelClosed",
    "CommunicationError",
    "Environment",
    "EventQueue",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "Interval",
    "Process",
    "ProcessKilled",
    "SimEvent",
    "SimulationError",
    "Timeline",
    "Timeout",
    "VirtualClock",
    "WatchdogTimeout",
    "drain_within",
    "get_within",
    "guarded",
    "install_fault_injector",
]
