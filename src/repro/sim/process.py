"""Generator-based cooperative processes (a miniature SimPy).

Used by the SPMD baselines (mini-MPI) where simulated control flow is
genuinely concurrent.  A process is a generator that yields
:class:`SimEvent` objects; the :class:`Environment` resumes it when the
yielded event triggers.

Supported waitables:

* ``yield env.timeout(dt)`` — resume after ``dt`` simulated seconds.
* ``yield other_process`` — join: resume when the process terminates, with
  its return value.
* ``yield event`` — any :class:`SimEvent`, e.g. a channel operation.
* ``yield env.all_of([...])`` / ``yield env.any_of([...])``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.errors import DeadlockError, ProcessKilled, SimulationError
from repro.sim.eventqueue import EventQueue

PENDING = object()


class SimEvent:
    """An occurrence at a point in simulated time.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail` which schedules its callbacks, and *processed* once the
    callbacks have run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["SimEvent"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self.env._schedule(self)
        return self


class Timeout(SimEvent):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)

    def succeed(self, value: Any = None) -> "SimEvent":  # pragma: no cover
        raise SimulationError("Timeout triggers automatically")


class Process(SimEvent):
    """Wraps a generator; itself an event that triggers on termination."""

    __slots__ = ("generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[SimEvent] = None
        # Bootstrap: resume the generator at the current simulated time.
        boot = SimEvent(env)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessKilled` into the process at the current time."""
        if self.triggered:
            return
        interruptor = SimEvent(self.env)

        def _do_interrupt(_ev: SimEvent) -> None:
            if self.triggered:
                return
            target = self._target
            if target is not None and self in (target.callbacks or []):
                target.callbacks.remove(self._resume)  # type: ignore[union-attr]
            self._step(ProcessKilled(cause), throw=True)

        interruptor.callbacks.append(_do_interrupt)
        interruptor.succeed()

    # ------------------------------------------------------------------
    def _resume(self, event: SimEvent) -> None:
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        self._target = None
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except ProcessKilled:
            if not self.triggered:
                self.succeed(None)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield SimEvent"
            )
        self._target = target
        if target.processed:
            # Already over: resume immediately at the current time.
            relay = SimEvent(self.env)
            relay.callbacks.append(lambda _ev: self._resume(target))
            relay.succeed()
        else:
            target.callbacks.append(self._resume)


class Condition(SimEvent):
    """Base for ``all_of`` / ``any_of`` composite waits."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[SimEvent], need_all: bool) -> None:
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        need = len(self.events) if need_all else 1

        def _on_done(ev: SimEvent) -> None:
            if self.triggered:
                return
            if not ev._ok:
                self.fail(ev._value)
                return
            self._n_done += 1
            if self._n_done >= need:
                self.succeed([e._value for e in self.events if e.triggered and e._ok])

        for ev in self.events:
            if ev.processed:
                relay = SimEvent(env)
                relay.callbacks.append(lambda _r, ev=ev: _on_done(ev))
                relay.succeed()
            else:
                ev.callbacks.append(_on_done)


class Environment:
    """Discrete-event execution environment for processes."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = EventQueue()

    @property
    def now(self) -> float:
        return self._now

    # -- factories ------------------------------------------------------
    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[SimEvent]) -> Condition:
        return Condition(self, events, need_all=True)

    def any_of(self, events: Iterable[SimEvent]) -> Condition:
        return Condition(self, events, need_all=False)

    # -- scheduling core --------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float = 0.0) -> None:
        self._queue.push(self._now + delay, event)

    def step(self) -> None:
        time, event = self._queue.pop()
        if time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or []:
            cb(event)
        if event._ok is False and not (callbacks or []):
            # An unhandled failure with nobody waiting: surface it.
            raise event._value

    def run(self, until: Optional[SimEvent] = None, max_steps: int = 50_000_000) -> Any:
        """Run until ``until`` triggers (or the queue drains)."""
        steps = 0
        while self._queue:
            if until is not None and until.processed:
                break
            self.step()
            steps += 1
            if steps > max_steps:
                raise SimulationError("simulation exceeded max_steps — livelock?")
        if until is not None:
            if not until.triggered:
                raise DeadlockError(
                    "event queue drained but the awaited event never triggered"
                )
            if until._ok is False:
                raise until._value
            return until._value
        return None
