"""A deterministic discrete-event priority queue.

Events are ordered by ``(time, sequence)`` so that simultaneous events fire
in insertion order — the property that makes whole-simulation runs
bit-reproducible.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, List, Optional, Tuple


class EventQueue:
    """Min-heap of ``(time, seq, payload)`` entries with stable ordering."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, payload: Any) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), payload))

    def pop(self) -> Tuple[float, Any]:
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain_until(self, t: float) -> List[Tuple[float, Any]]:
        """Pop every entry with time ``<= t`` in order."""
        out = []
        while self._heap and self._heap[0][0] <= t:
            out.append(self.pop())
        return out
