"""Deterministic fault injection for the simulated network.

The unit of injection is a *transfer*: every non-loopback
:meth:`repro.net.network.Network.transfer` consults the network's
installed :class:`FaultInjector` before charging any timeline.  A
:class:`FaultPlan` is a list of :class:`FaultAction` rows, each of which
fires on the *nth* transfer matching its ``src``/``dst``/``tag_prefix``
filters — occurrence counting makes plans exactly replayable: the same
program plus the same plan faults the same message every run, because
the simulation itself is deterministic.

Supported action kinds:

``drop``
    Discard one matching message (:class:`~repro.net.link.MessageDropped`).
``delay``
    Hold one matching message back by ``delay`` simulated seconds.
``truncate``
    Cut one matching bulk payload short
    (:class:`~repro.net.link.StreamTruncated`).
``sever``
    Take the link between two hosts down
    (:class:`~repro.net.link.LinkSevered`); ``heal_after`` blocked
    transfers later the link comes back, or never if ``heal_after`` is
    ``None``.
``crash``
    Kill the process on ``host``: its registered crash hook runs (wiping
    daemon state, see :meth:`repro.core.daemon.daemon.Daemon.crash`) and
    every transfer touching the host raises
    :class:`~repro.net.link.ConnectionReset` until the host is
    :meth:`restarted <FaultInjector.restart>`.

The injector doubles as the suite's hang watchdog: ``max_transfers``
bounds the total number of transfers a run may attempt, so a retry loop
that stops converging fails fast with
:class:`~repro.sim.errors.WatchdogTimeout` instead of spinning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.net.link import (
    ConnectionReset,
    LinkSevered,
    MessageDropped,
    StreamTruncated,
)
from repro.sim.errors import WatchdogTimeout


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: *kind* fired on the *nth* matching transfer.

    ``src``/``dst``/``tag``/``tag_prefix`` are optional filters (``None``
    matches anything); ``tag`` matches the transfer tag exactly —
    crucial when one tag is a prefix of another (``CommandBatch`` vs
    ``CommandBatchResponse``) — while ``tag_prefix`` matches families
    like ``bulk:``.  ``nth`` is 1-based among the transfers that pass
    the filters.  ``delay`` is used by ``delay`` actions, ``heal_after``
    by ``sever`` actions, ``host`` by ``crash`` actions (defaulting to
    the matched transfer's destination).
    """

    kind: str
    nth: int = 1
    src: Optional[str] = None
    dst: Optional[str] = None
    tag: Optional[str] = None
    tag_prefix: Optional[str] = None
    delay: float = 0.0
    heal_after: Optional[int] = None
    host: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "delay", "truncate", "sever", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")

    def matches(self, src: str, dst: str, tag: str) -> bool:
        """True if a transfer ``src -> dst`` with ``tag`` passes the filters."""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        if self.tag_prefix is not None and not tag.startswith(self.tag_prefix):
            return False
        return True


@dataclass
class FaultPlan:
    """An ordered set of :class:`FaultAction` rows plus the run's watchdog.

    Plans are plain data — build them explicitly for targeted schedules
    or derive one from a seed with :meth:`from_seed` for soak runs.
    """

    actions: List[FaultAction] = field(default_factory=list)
    max_transfers: Optional[int] = None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_faults: int = 3,
        tags: Tuple[str, ...] = ("CommandBatch", "CommandBatchResponse", "bulk:"),
        max_transfers: Optional[int] = 200_000,
    ) -> "FaultPlan":
        """A replayable random plan of transient (recoverable) faults.

        Draws ``n_faults`` drop/delay actions against the given tag
        prefixes with occurrence indices spread over the early part of a
        run.  The same seed always yields the same plan.
        """
        rng = random.Random(seed)
        actions = []
        for _ in range(n_faults):
            kind = rng.choice(("drop", "drop", "delay"))
            actions.append(
                FaultAction(
                    kind=kind,
                    nth=rng.randint(1, 12),
                    tag_prefix=rng.choice(tags),
                    delay=rng.uniform(0.001, 0.05) if kind == "delay" else 0.0,
                )
            )
        return cls(actions=actions, max_transfers=max_transfers)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the stream of transfers.

    Install one on a network with
    :func:`install_fault_injector`; every non-loopback transfer calls
    :meth:`on_transfer`, which either returns an extra delay (possibly
    zero) or raises the scheduled :class:`~repro.net.link.NetworkError`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._match_counts: List[int] = [0] * len(plan.actions)
        self._fired: List[bool] = [False] * len(plan.actions)
        self._severed: Dict[FrozenSet[str], Optional[int]] = {}
        self._crashed: set = set()
        self._crash_hooks: Dict[str, Callable[[], None]] = {}
        self.total_transfers = 0
        self.injected_drops = 0
        self.injected_delays = 0
        self.injected_truncations = 0
        self.links_severed = 0
        self.links_healed = 0
        self.blocked_by_sever = 0
        self.crashes = 0
        self.reset_rejections = 0

    # ------------------------------------------------------------------
    def register_crash_hook(self, host_name: str, hook: Callable[[], None]) -> None:
        """Run ``hook`` (e.g. ``daemon.crash``) when ``host_name`` is crashed."""
        self._crash_hooks[host_name] = hook

    def restart(self, host_name: str) -> None:
        """Bring a crashed host back; transfers to it flow again."""
        self._crashed.discard(host_name)

    def heal(self, a: str, b: str) -> None:
        """Explicitly repair a severed link between hosts ``a`` and ``b``."""
        pair = frozenset((a, b))
        if pair in self._severed:
            del self._severed[pair]
            self.links_healed += 1

    @property
    def fired_count(self) -> int:
        """How many plan actions have fired so far."""
        return sum(self._fired)

    def snapshot(self) -> Dict[str, int]:
        """The injector's counters as a plain dict (for test assertions)."""
        return {
            "total_transfers": self.total_transfers,
            "injected_drops": self.injected_drops,
            "injected_delays": self.injected_delays,
            "injected_truncations": self.injected_truncations,
            "links_severed": self.links_severed,
            "links_healed": self.links_healed,
            "blocked_by_sever": self.blocked_by_sever,
            "crashes": self.crashes,
            "reset_rejections": self.reset_rejections,
            "fired_actions": self.fired_count,
        }

    # ------------------------------------------------------------------
    def on_transfer(self, src: str, dst: str, tag: object, nbytes: int) -> float:
        """Gate one transfer; returns extra delay or raises a fault.

        Evaluation order: watchdog budget, crashed endpoints, severed
        links, then the first not-yet-fired plan action whose occurrence
        count reaches ``nth``.
        """
        self.total_transfers += 1
        budget = self.plan.max_transfers
        if budget is not None and self.total_transfers > budget:
            raise WatchdogTimeout(
                f"fault watchdog: run exceeded {budget} transfers "
                f"(last: {src} -> {dst} tag={tag!r}) — retry livelock?"
            )
        if src in self._crashed or dst in self._crashed:
            self.reset_rejections += 1
            down = src if src in self._crashed else dst
            raise ConnectionReset(f"host {down!r} crashed (transfer {src} -> {dst})")
        pair = frozenset((src, dst))
        if pair in self._severed:
            self.blocked_by_sever += 1
            remaining = self._severed[pair]
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    del self._severed[pair]
                    self.links_healed += 1
                else:
                    self._severed[pair] = remaining
            raise LinkSevered(f"link {src} <-> {dst} is severed (tag={tag!r})")

        tag_str = "" if tag is None else str(tag)
        for i, action in enumerate(self.plan.actions):
            if self._fired[i] or not action.matches(src, dst, tag_str):
                continue
            self._match_counts[i] += 1
            if self._match_counts[i] < action.nth:
                continue
            self._fired[i] = True
            if action.kind == "drop":
                self.injected_drops += 1
                raise MessageDropped(
                    f"injected drop: {src} -> {dst} tag={tag!r} ({nbytes} B)"
                )
            if action.kind == "delay":
                self.injected_delays += 1
                return action.delay
            if action.kind == "truncate":
                self.injected_truncations += 1
                raise StreamTruncated(
                    f"injected truncation: {src} -> {dst} tag={tag!r} ({nbytes} B)"
                )
            if action.kind == "sever":
                a = action.src if action.src is not None else src
                b = action.dst if action.dst is not None else dst
                self._severed[frozenset((a, b))] = action.heal_after
                self.links_severed += 1
                self.blocked_by_sever += 1
                raise LinkSevered(f"injected sever: link {a} <-> {b} is down")
            # crash
            host = action.host if action.host is not None else dst
            self._crashed.add(host)
            self.crashes += 1
            hook = self._crash_hooks.get(host)
            if hook is not None:
                hook()
            self.reset_rejections += 1
            raise ConnectionReset(f"injected crash of host {host!r}")
        return 0.0


def install_fault_injector(network, plan: FaultPlan) -> FaultInjector:
    """Attach a fresh :class:`FaultInjector` for ``plan`` to ``network``.

    Returns the injector so callers can register crash hooks and read
    its counters afterwards.
    """
    injector = FaultInjector(plan)
    network.fault_injector = injector
    return injector
