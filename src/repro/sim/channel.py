"""Blocking FIFO channels for simulated processes."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.errors import CommunicationError, SimulationError
from repro.sim.process import Environment, SimEvent


class ChannelClosed(SimulationError, CommunicationError):
    """Raised on ``get`` from a closed, empty channel or ``put`` to a closed
    channel.

    Inherits :class:`CommunicationError` too, so resilience code that
    handles "the message did not make it" catches channel closure alongside
    the :mod:`repro.net.link` failures with a single except clause.
    """


class Channel:
    """An unbounded (or bounded) FIFO connecting simulated processes.

    ``put`` and ``get`` return :class:`SimEvent` objects to be yielded from
    process generators.  Items put with a *transfer delay* become visible to
    getters only after that delay — this is how network latency is charged in
    the process model.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = "") -> None:
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple[SimEvent, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(ChannelClosed(f"channel {self.name!r} closed"))

    # ------------------------------------------------------------------
    def put(self, item: Any, delay: float = 0.0) -> SimEvent:
        """Deposit ``item``; the returned event triggers when accepted."""
        if self._closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        done = SimEvent(self.env)
        if delay > 0.0:
            arrival = self.env.timeout(delay)
            arrival.callbacks.append(lambda _ev: self._deliver(item))
            done.succeed()
        else:
            self._deliver(item)
            if self.capacity is not None and len(self._items) > self.capacity:
                # Block the putter until space frees up.
                self._putters.append((done, None))
            else:
                done.succeed()
        return done

    def _deliver(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Returns an event that triggers with the next item."""
        ev = SimEvent(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                putter, _ = self._putters.popleft()
                if not putter.triggered:
                    putter.succeed()
        elif self._closed:
            ev.fail(ChannelClosed(f"get on closed empty channel {self.name!r}"))
        else:
            self._getters.append(ev)
        return ev
