"""Exception types raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for all virtual-time simulation errors."""


class CommunicationError(RuntimeError):
    """Common base for every message-plumbing failure in the repo.

    Both the process-model channels (:class:`~repro.sim.channel.ChannelClosed`)
    and the call-model network errors (:class:`repro.net.link.NetworkError`
    and its subclasses) derive from this type, so resilience code can catch
    "anything that means the message did not make it" with one handler.  It
    lives here rather than in :mod:`repro.net` because the sim layer must not
    import the net layer.
    """


class WatchdogTimeout(SimulationError):
    """A watchdog deadline elapsed before the awaited condition held.

    Raised by :mod:`repro.sim.watchdog` utilities and by
    :class:`repro.sim.faults.FaultInjector` when a run exceeds its transfer
    budget — the simulation analogue of a test harness hang.
    """


class ClockError(SimulationError):
    """An operation would move a :class:`~repro.sim.clock.VirtualClock`
    backwards in time."""


class TimelineError(SimulationError):
    """An interval reservation conflicts with existing reservations."""


class ProcessKilled(SimulationError):
    """Raised inside a process generator when it is forcibly interrupted."""


class DeadlockError(SimulationError):
    """The process environment ran out of events while processes are still
    waiting — a genuine deadlock in the simulated program."""
