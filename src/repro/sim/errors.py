"""Exception types raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for all virtual-time simulation errors."""


class ClockError(SimulationError):
    """An operation would move a :class:`~repro.sim.clock.VirtualClock`
    backwards in time."""


class TimelineError(SimulationError):
    """An interval reservation conflicts with existing reservations."""


class ProcessKilled(SimulationError):
    """Raised inside a process generator when it is forcibly interrupted."""


class DeadlockError(SimulationError):
    """The process environment ran out of events while processes are still
    waiting — a genuine deadlock in the simulated program."""
