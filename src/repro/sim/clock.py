"""Per-entity virtual clocks.

A :class:`VirtualClock` is a monotonically non-decreasing marker of simulated
seconds.  The client-driven layers of the reproduction (the dOpenCL client
driver, the daemons) each own one; synchronous interactions combine clocks
with ``advance_to(max(...))`` exactly the way message timestamps combine in a
Lamport-style model.
"""

from __future__ import annotations

from repro.sim.errors import ClockError


class VirtualClock:
    """A monotonic virtual clock measured in seconds.

    Parameters
    ----------
    start:
        Initial time.  Defaults to 0.0.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("_now", "name")

    def __init__(self, start: float = 0.0, name: str = "") -> None:
        if start < 0.0:
            raise ClockError(f"clock {name!r} cannot start at negative time {start}")
        self._now = float(start)
        self.name = name

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ClockError(f"clock {self.name!r}: negative advance {delta}")
        self._now += delta
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``.

        Times in the past are ignored (the clock never moves backwards); this
        is the ``max`` combine used when a reply arrives that was produced
        before the local clock's current time.
        """
        if t > self._now:
            self._now = float(t)
        return self._now

    def copy(self) -> "VirtualClock":
        return VirtualClock(self._now, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<VirtualClock{label} now={self._now:.9f}>"
