"""Interval timelines: serially-reusable simulated resources.

A :class:`Timeline` models a resource that can do one thing at a time — a
compute device, a NIC, a PCIe bus.  Work is placed onto the timeline with
:meth:`Timeline.allocate`, which finds the *first* gap of the requested
duration at or after the requester's ready time (first-fit).

First-fit gap allocation makes contention modelling independent of the real
execution order of simulated clients: if client B is simulated *after*
client A but issues work at an earlier virtual time, B's work lands in the
gap before A's reservations, exactly as a FIFO hardware queue ordered by
arrival time would behave.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.sim.errors import TimelineError


@dataclass(frozen=True)
class Interval:
    """A closed-open busy interval ``[start, end)`` on a timeline."""

    start: float
    end: float
    tag: object = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


class Timeline:
    """A serially-reusable resource with first-fit interval allocation.

    Parameters
    ----------
    name:
        Label for diagnostics.
    epsilon:
        Durations below ``epsilon`` are treated as instantaneous and do not
        reserve capacity.
    """

    __slots__ = ("name", "epsilon", "_starts", "_intervals")

    def __init__(self, name: str = "", epsilon: float = 1e-15) -> None:
        self.name = name
        self.epsilon = epsilon
        self._starts: List[float] = []
        self._intervals: List[Interval] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    @property
    def busy_until(self) -> float:
        """The end of the last reservation (0.0 when empty)."""
        if not self._intervals:
            return 0.0
        return self._intervals[-1].end

    def busy_time(self, window_start: float = 0.0, window_end: Optional[float] = None) -> float:
        """Total reserved time overlapping ``[window_start, window_end)``."""
        if window_end is None:
            window_end = self.busy_until
        total = 0.0
        for iv in self._intervals:
            lo = max(iv.start, window_start)
            hi = min(iv.end, window_end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, window_start: float, window_end: float) -> float:
        """Fraction of ``[window_start, window_end)`` that is reserved."""
        span = window_end - window_start
        if span <= 0.0:
            return 0.0
        return self.busy_time(window_start, window_end) / span

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def next_free(self, ready: float, duration: float) -> float:
        """Earliest start time ``>= ready`` with a free gap of ``duration``."""
        if duration < 0.0:
            raise TimelineError(f"timeline {self.name!r}: negative duration {duration}")
        start = ready
        idx = bisect.bisect_left(self._starts, ready)
        # The previous interval may still cover `ready`.
        if idx > 0 and self._intervals[idx - 1].end > start:
            start = self._intervals[idx - 1].end
            idx_scan = idx
        else:
            idx_scan = idx
        for i in range(idx_scan, len(self._intervals)):
            iv = self._intervals[i]
            if iv.start - start >= duration:
                return start
            if iv.end > start:
                start = iv.end
        return start

    def allocate(self, ready: float, duration: float, tag: object = None) -> Interval:
        """Reserve the first free gap of ``duration`` at or after ``ready``.

        Returns the reserved :class:`Interval`.  Instantaneous work
        (``duration < epsilon``) is not recorded but still returns an
        interval positioned after any reservation covering ``ready``.
        """
        start = self.next_free(ready, duration)
        iv = Interval(start, start + duration, tag)
        if duration >= self.epsilon:
            pos = bisect.bisect_left(self._starts, iv.start)
            self._starts.insert(pos, iv.start)
            self._intervals.insert(pos, iv)
        return iv

    def reserve(self, start: float, end: float, tag: object = None) -> Interval:
        """Reserve an exact interval; raises :class:`TimelineError` on
        conflict with an existing reservation."""
        if end < start:
            raise TimelineError(f"timeline {self.name!r}: end {end} < start {start}")
        iv = Interval(start, end, tag)
        pos = bisect.bisect_left(self._starts, start)
        if pos > 0 and self._intervals[pos - 1].overlaps(iv):
            raise TimelineError(f"timeline {self.name!r}: {iv} overlaps {self._intervals[pos - 1]}")
        if pos < len(self._intervals) and self._intervals[pos].overlaps(iv):
            raise TimelineError(f"timeline {self.name!r}: {iv} overlaps {self._intervals[pos]}")
        if iv.duration >= self.epsilon:
            self._starts.insert(pos, iv.start)
            self._intervals.insert(pos, iv)
        return iv

    def clear(self) -> None:
        self._starts.clear()
        self._intervals.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeline {self.name!r} n={len(self._intervals)} busy_until={self.busy_until:.9f}>"
