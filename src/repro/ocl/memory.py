"""Buffer memory objects."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ocl.constants import (
    CL_MEM_COPY_HOST_PTR,
    CL_MEM_READ_ONLY,
    CL_MEM_READ_WRITE,
    CL_MEM_USE_HOST_PTR,
    CL_MEM_WRITE_ONLY,
    ErrorCode,
)
from repro.ocl.context import Context
from repro.ocl.errors import CLError, require

_ACCESS_FLAGS = CL_MEM_READ_WRITE | CL_MEM_READ_ONLY | CL_MEM_WRITE_ONLY


class Buffer:
    """``clCreateBuffer`` result: ``size`` bytes of device memory.

    Backed by one NumPy byte array (the authoritative copy on the owning
    host).  Distributed replication/coherence is dOpenCL's job, layered
    above this runtime (Section III-D)."""

    def __init__(
        self,
        context: Context,
        flags: int,
        size: int,
        host_data: Optional[np.ndarray] = None,
    ) -> None:
        require(size > 0, ErrorCode.CL_INVALID_BUFFER_SIZE, f"size must be positive, got {size}")
        access = flags & _ACCESS_FLAGS
        if access not in (0, CL_MEM_READ_WRITE, CL_MEM_READ_ONLY, CL_MEM_WRITE_ONLY):
            raise CLError(ErrorCode.CL_INVALID_VALUE, "conflicting access flags")
        max_alloc = min(d.hw.spec.max_alloc for d in context.devices)
        require(
            size <= max_alloc,
            ErrorCode.CL_INVALID_BUFFER_SIZE,
            f"size {size} exceeds CL_DEVICE_MAX_MEM_ALLOC_SIZE ({max_alloc})",
        )
        if flags & (CL_MEM_COPY_HOST_PTR | CL_MEM_USE_HOST_PTR):
            require(
                host_data is not None,
                ErrorCode.CL_INVALID_HOST_PTR,
                "flags require host data",
            )
        elif host_data is not None:
            raise CLError(
                ErrorCode.CL_INVALID_HOST_PTR,
                "host data passed without CL_MEM_COPY_HOST_PTR/CL_MEM_USE_HOST_PTR",
            )
        self.context = context
        self.flags = flags or CL_MEM_READ_WRITE
        self.size = int(size)
        self.array = np.zeros(self.size, dtype=np.uint8)
        if host_data is not None:
            raw = np.ascontiguousarray(host_data).view(np.uint8).ravel()
            require(
                raw.size == self.size,
                ErrorCode.CL_INVALID_HOST_PTR,
                f"host data is {raw.size} bytes, buffer is {self.size}",
            )
            self.array[:] = raw
        # Device memory accounting (frees on release).
        self._accounted = []
        try:
            for dev in context.devices:
                dev.hw.allocate_mem(self.size)
                self._accounted.append(dev)
        except MemoryError as exc:
            for dev in self._accounted:
                dev.hw.free_mem(self.size)
            raise CLError(ErrorCode.CL_MEM_OBJECT_ALLOCATION_FAILURE, str(exc)) from exc
        self.refcount = 1
        self.released = False

    @property
    def readable(self) -> bool:
        return not (self.flags & CL_MEM_WRITE_ONLY)

    @property
    def writable(self) -> bool:
        return not (self.flags & CL_MEM_READ_ONLY)

    def typed_view(self, dtype: np.dtype) -> np.ndarray:
        """View the backing store as ``dtype`` (for kernel arguments)."""
        self._check_alive()
        if self.size % dtype.itemsize:
            raise CLError(
                ErrorCode.CL_INVALID_BUFFER_SIZE,
                f"buffer size {self.size} is not a multiple of {dtype} itemsize",
            )
        return self.array.view(dtype)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        self._check_alive()
        self._check_range(offset, nbytes)
        return self.array[offset : offset + nbytes].copy()

    def write(self, offset: int, data: np.ndarray) -> int:
        self._check_alive()
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        self._check_range(offset, raw.size)
        self.array[offset : offset + raw.size] = raw
        return raw.size

    def _check_range(self, offset: int, nbytes: int) -> None:
        require(
            0 <= offset and nbytes >= 0 and offset + nbytes <= self.size,
            ErrorCode.CL_INVALID_VALUE,
            f"range [{offset}, {offset + nbytes}) outside buffer of {self.size} bytes",
        )

    def _check_alive(self) -> None:
        if self.released:
            raise CLError(ErrorCode.CL_INVALID_MEM_OBJECT, "buffer was released")

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0 and not self.released:
            self.released = True
            for dev in self._accounted:
                dev.hw.free_mem(self.size)
            self._accounted = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Buffer {self.size}B flags=0x{self.flags:x}>"
