"""The flat C-style OpenCL API surface.

Applications program against this method set (``clGetPlatformIDs``,
``clCreateContext``, ...).  :class:`NativeAPI` implements it on the local
host's devices; ``repro.core.client.api.DOpenCLAPI`` implements the *same
surface* over the network — which is exactly how dOpenCL runs unmodified
applications (the client driver is "a drop-in replacement for an existing
OpenCL implementation", Section III-B).

The API instance owns the application's virtual clock: blocking calls
advance it to command completion; every call charges a small host-side
overhead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.clc import LocalMemory
from repro.hw.node import Host
from repro.ocl.constants import CL_COMPLETE, CL_DEVICE_TYPE_ALL, ErrorCode
from repro.ocl.context import Context
from repro.ocl.errors import CLError
from repro.ocl.event import Event, UserEvent
from repro.ocl.kernel import Kernel
from repro.ocl.memory import Buffer
from repro.ocl.platform import Device, Platform
from repro.ocl.program import Program
from repro.ocl.queue import CommandQueue
from repro.sim.clock import VirtualClock

#: Host-side cost of one API call (argument marshalling, dispatch).
API_CALL_OVERHEAD = 2e-6


class NativeAPI:
    """The vendor OpenCL implementation on one host."""

    def __init__(
        self,
        host: Host,
        clock: Optional[VirtualClock] = None,
        platform_name: str = "repro-ocl",
    ) -> None:
        self.host = host
        self.clock = clock if clock is not None else VirtualClock(name=f"{host.name}.app")
        self.platform = Platform(host, name=platform_name)
        #: Benchmark rescaling knob applied to queues created through here.
        self.workload_scale = 1.0

    # ------------------------------------------------------------------
    def _tick(self) -> float:
        return self.clock.advance_by(API_CALL_OVERHEAD)

    # -- platform / device ------------------------------------------------
    def clGetPlatformIDs(self) -> List[Platform]:
        self._tick()
        return [self.platform]

    def clGetPlatformInfo(self, platform: Platform, key: str) -> object:
        self._tick()
        return platform.get_info(key)

    def clGetDeviceIDs(self, platform: Platform, device_type: int = CL_DEVICE_TYPE_ALL) -> List[Device]:
        self._tick()
        return platform.get_devices(device_type)

    def clGetDeviceInfo(self, device: Device, key: str) -> object:
        self._tick()
        return device.get_info(key)

    # -- context -----------------------------------------------------------
    def clCreateContext(self, devices: Sequence[Device]) -> Context:
        self._tick()
        return Context(devices)

    def clRetainContext(self, context: Context) -> None:
        context.retain()

    def clReleaseContext(self, context: Context) -> None:
        context.release()

    # -- command queue ------------------------------------------------------
    def clCreateCommandQueue(self, context: Context, device: Device, properties: int = 0) -> CommandQueue:
        self._tick()
        queue = CommandQueue(context, device, properties)
        queue.workload_scale = self.workload_scale
        return queue

    def clRetainCommandQueue(self, queue: CommandQueue) -> None:
        queue.retain()

    def clReleaseCommandQueue(self, queue: CommandQueue) -> None:
        queue.release()

    def clFinish(self, queue: CommandQueue) -> None:
        t = self._tick()
        self.clock.advance_to(queue.finish(t))

    def clFlush(self, queue: CommandQueue) -> None:
        queue.flush(self._tick())

    # -- memory ---------------------------------------------------------------
    def clCreateBuffer(
        self,
        context: Context,
        flags: int,
        size: int,
        host_data: Optional[np.ndarray] = None,
    ) -> Buffer:
        self._tick()
        return Buffer(context, flags, size, host_data)

    def clRetainMemObject(self, buffer: Buffer) -> None:
        buffer.retain()

    def clReleaseMemObject(self, buffer: Buffer) -> None:
        buffer.release()

    def clEnqueueWriteBuffer(
        self,
        queue: CommandQueue,
        buffer: Buffer,
        blocking: bool,
        offset: int,
        data: np.ndarray,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        t = self._tick()
        event = queue.enqueue_write_buffer(buffer, data, t, offset, wait_for)
        if blocking:
            self.clock.advance_to(event.wait(t))
        return event

    def clEnqueueReadBuffer(
        self,
        queue: CommandQueue,
        buffer: Buffer,
        blocking: bool = True,
        offset: int = 0,
        nbytes: Optional[int] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ):
        """Returns ``(data, event)``; ``data`` is a byte array copy."""
        t = self._tick()
        data, event = queue.enqueue_read_buffer(buffer, t, offset, nbytes, wait_for)
        if blocking:
            self.clock.advance_to(event.wait(t))
        return data, event

    def clEnqueueCopyBuffer(
        self,
        queue: CommandQueue,
        src: Buffer,
        dst: Buffer,
        src_offset: int = 0,
        dst_offset: int = 0,
        nbytes: Optional[int] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        t = self._tick()
        return queue.enqueue_copy_buffer(src, dst, t, src_offset, dst_offset, nbytes, wait_for)

    # -- unimplemented object kinds (paper Section III-B parity) -----------------
    def clCreateImage2D(self, *args, **kwargs):
        raise CLError(
            ErrorCode.CL_INVALID_OPERATION,
            "images are not implemented (paper Section III-B: 'API functions ... "
            "for images, samplers, or profiling have not been implemented yet')",
        )

    clCreateImage3D = clCreateImage2D

    def clCreateSampler(self, *args, **kwargs):
        raise CLError(ErrorCode.CL_INVALID_OPERATION, "samplers are not implemented")

    def clEnqueueMapBuffer(self, *args, **kwargs):
        raise CLError(
            ErrorCode.CL_INVALID_OPERATION,
            "buffer mapping is not implemented (use read/write transfers)",
        )

    # -- program / kernel ----------------------------------------------------
    def clCreateProgramWithSource(self, context: Context, source: str) -> Program:
        self._tick()
        return Program(context, source)

    def clBuildProgram(self, program: Program, options: str = "") -> None:
        t = self._tick()
        self.clock.advance_to(program.build(options, t))

    def clGetProgramBuildInfo(self, program: Program, device: Device, key: str) -> object:
        self._tick()
        return program.build_info(key)

    def clRetainProgram(self, program: Program) -> None:
        program.retain()

    def clReleaseProgram(self, program: Program) -> None:
        program.release()

    def clCreateKernel(self, program: Program, name: str) -> Kernel:
        self._tick()
        return Kernel(program, name)

    def clCreateKernelsInProgram(self, program: Program) -> List[Kernel]:
        self._tick()
        return [Kernel(program, name) for name in program.kernel_names]

    def clSetKernelArg(self, kernel: Kernel, index: int, value: object) -> None:
        self._tick()
        kernel.set_arg(index, value)

    def clRetainKernel(self, kernel: Kernel) -> None:
        kernel.retain()

    def clReleaseKernel(self, kernel: Kernel) -> None:
        kernel.release()

    def clEnqueueNDRangeKernel(
        self,
        queue: CommandQueue,
        kernel: Kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        global_offset: Optional[Sequence[int]] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        t = self._tick()
        return queue.enqueue_nd_range_kernel(
            kernel, global_size, t, local_size, global_offset, wait_for
        )

    # -- events ------------------------------------------------------------------
    def clWaitForEvents(self, events: Sequence[Event]) -> None:
        t = self._tick()
        if not events:
            raise CLError(ErrorCode.CL_INVALID_VALUE, "empty event list")
        for ev in events:
            self.clock.advance_to(ev.wait(t))

    def clGetEventInfo(self, event: Event, key: str = "STATUS") -> object:
        self._tick()
        if key == "STATUS":
            return event.status
        if key == "COMMAND_TYPE":
            return event.command_type
        raise CLError(ErrorCode.CL_INVALID_VALUE, f"unknown event info key {key!r}")

    def clGetEventProfilingInfo(self, event: Event, param: int) -> float:
        self._tick()
        return event.profiling_info(param)

    def clSetEventCallback(self, event: Event, callback, status: int = CL_COMPLETE) -> None:
        self._tick()
        event.set_callback(callback, status)

    def clCreateUserEvent(self, context: Context) -> UserEvent:
        t = self._tick()
        return UserEvent(context, t)

    def clSetUserEventStatus(self, event: UserEvent, status: int) -> None:
        t = self._tick()
        event.set_status(status, t)

    def clRetainEvent(self, event: Event) -> None:
        event.retain()

    def clReleaseEvent(self, event: Event) -> None:
        event.release()

    # -- convenience (not part of the C API) ----------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeAPI host={self.host.name!r} t={self.clock.now:.6f}>"


#: Re-exported so applications can say ``cl.LocalMemory(nbytes)``.
NativeAPI.LocalMemory = LocalMemory
