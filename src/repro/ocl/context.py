"""Contexts: a set of devices sharing management objects."""

from __future__ import annotations

from typing import List, Sequence

from repro.ocl.constants import ErrorCode
from repro.ocl.errors import CLError, require
from repro.ocl.platform import Device, Platform


class Context:
    """``clCreateContext`` result.

    In this native runtime all devices of a context live on one host (one
    vendor platform) — exactly the limitation that forces dOpenCL to build
    *compound* contexts out of per-server native contexts (Section III-D).
    """

    def __init__(self, devices: Sequence[Device]) -> None:
        require(len(devices) > 0, ErrorCode.CL_INVALID_VALUE, "context needs devices")
        platforms = {d.platform for d in devices}
        if len(platforms) != 1:
            raise CLError(
                ErrorCode.CL_INVALID_DEVICE,
                "all devices of a context must belong to one platform",
            )
        hosts = {d.host for d in devices}
        if len(hosts) != 1:
            raise CLError(
                ErrorCode.CL_INVALID_DEVICE,
                "a native context cannot span hosts (this is what dOpenCL adds)",
            )
        self.devices: List[Device] = list(devices)
        self.platform: Platform = next(iter(platforms))
        self.host = next(iter(hosts))
        self.refcount = 1
        self.released = False

    def check_device(self, device: Device) -> None:
        if device not in self.devices:
            raise CLError(ErrorCode.CL_INVALID_DEVICE, "device not in context")

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0:
            self.released = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Context host={self.host.name!r} devices={len(self.devices)}>"
