"""Command queues: in-order execution with virtual-time scheduling.

Data effects happen eagerly (at enqueue, in program order); command
*timing* resolves lazily once all dependencies (explicit wait lists plus
the in-order predecessor) are resolved.  Kernel commands occupy the
device timeline; buffer transfers occupy the host's PCIe bus for GPU-class
devices.  Cross-queue contention for one device emerges from the shared
timeline — the effect behind the paper's Section V-C "without device
manager" measurement.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.clc import execute_kernel as clc_execute
from repro.clc.costmodel import kernel_cost
from repro.ocl.constants import (
    CL_COMMAND_BARRIER,
    CL_COMMAND_COPY_BUFFER,
    CL_COMMAND_MARKER,
    CL_COMMAND_NDRANGE_KERNEL,
    CL_COMMAND_READ_BUFFER,
    CL_COMMAND_WRITE_BUFFER,
    CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE,
    CL_QUEUE_PROFILING_ENABLE,
    ErrorCode,
)
from repro.ocl.context import Context
from repro.ocl.errors import CLError, require
from repro.ocl.event import Event
from repro.ocl.kernel import Kernel
from repro.ocl.memory import Buffer
from repro.ocl.platform import Device

#: On-device buffer-to-buffer copy bandwidth (global memory copy).
DEVICE_COPY_BANDWIDTH = 20e9

_VALID_QUEUE_PROPS = CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE | CL_QUEUE_PROFILING_ENABLE


class CommandQueue:
    """``clCreateCommandQueue`` result."""

    def __init__(self, context: Context, device: Device, properties: int = 0) -> None:
        context.check_device(device)
        if properties & ~_VALID_QUEUE_PROPS:
            raise CLError(ErrorCode.CL_INVALID_QUEUE_PROPERTIES, f"0x{properties:x}")
        self.context = context
        self.device = device
        self.properties = properties
        self.in_order = not (properties & CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE)
        self.events: List[Event] = []
        self._prev: Optional[Event] = None
        #: Benchmark rescaling knob (see EXPERIMENTS.md): multiplies kernel
        #: op counts so reduced-size workloads charge paper-size costs.
        self.workload_scale = 1.0
        self.refcount = 1

    # ------------------------------------------------------------------
    # command machinery
    # ------------------------------------------------------------------
    def _enqueue(
        self,
        command_type: int,
        t: float,
        duration: float,
        wait_for: Optional[Sequence[Event]],
        schedule: Callable[[float, float], tuple],
    ) -> Event:
        """Create an event whose timing resolves when dependencies do.

        ``schedule(ready, duration) -> (start, end)`` places the command on
        the owning resource's timeline.
        """
        if wait_for:
            for ev in wait_for:
                if not isinstance(ev, Event):
                    raise CLError(ErrorCode.CL_INVALID_EVENT_WAIT_LIST, f"not an event: {ev!r}")
        deps: List[Event] = list(wait_for or [])
        if self.in_order and self._prev is not None:
            deps.append(self._prev)
        event = Event(self.context, command_type, queued_at=t)
        self.events.append(event)
        if self.in_order:
            self._prev = event

        remaining = [d for d in deps if not d.resolved]

        def try_resolve() -> None:
            nonlocal remaining
            if event.resolved:
                # Registered on several dependencies: a resolution
                # cascade (e.g. a user event unblocking an in-order
                # chain) may kick this command through one dependency's
                # dependents while it still sits on another's list.
                return
            remaining = [d for d in remaining if not d.resolved]
            if remaining:
                return
            ready = t
            for d in deps:
                ready = max(ready, d.end)
            start, end = schedule(ready, duration)
            event.submitted_at = min(start, max(t, ready))
            event._mark_resolved(start, end)

        if remaining:
            for d in list(remaining):
                d.on_resolve(try_resolve)
        else:
            try_resolve()
        return event

    def _device_schedule(self, tag: object) -> Callable[[float, float], tuple]:
        timeline = self.device.hw.timeline

        def schedule(ready: float, duration: float) -> tuple:
            iv = timeline.allocate(ready, duration, tag)
            return iv.start, iv.end

        return schedule

    def _bus_schedule(self, direction: str, tag: object) -> Callable[[float, float], tuple]:
        host = self.device.host
        if not host.device_needs_bus(self.device.hw):
            def schedule(ready: float, duration: float) -> tuple:
                return ready, ready + duration

            return schedule
        timeline = host.pcie.timeline

        def schedule(ready: float, duration: float) -> tuple:
            iv = timeline.allocate(ready, duration, tag)
            return iv.start, iv.end

        return schedule

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        data: np.ndarray,
        t: float,
        offset: int = 0,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Host-to-device upload (data effect immediate, timing on the bus)."""
        self._check_buffer(buffer)
        nbytes = buffer.write(offset, data)
        duration = self.device.host.upload_duration(self.device.hw, nbytes)
        return self._enqueue(
            CL_COMMAND_WRITE_BUFFER, t, duration, wait_for, self._bus_schedule("write", "h2d")
        )

    def enqueue_read_buffer(
        self,
        buffer: Buffer,
        t: float,
        offset: int = 0,
        nbytes: Optional[int] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> tuple:
        """Device-to-host download; returns ``(data, event)``."""
        self._check_buffer(buffer)
        if nbytes is None:
            nbytes = buffer.size - offset
        data = buffer.read(offset, nbytes)
        duration = self.device.host.download_duration(self.device.hw, nbytes)
        event = self._enqueue(
            CL_COMMAND_READ_BUFFER, t, duration, wait_for, self._bus_schedule("read", "d2h")
        )
        return data, event

    def enqueue_copy_buffer(
        self,
        src: Buffer,
        dst: Buffer,
        t: float,
        src_offset: int = 0,
        dst_offset: int = 0,
        nbytes: Optional[int] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        self._check_buffer(src)
        self._check_buffer(dst)
        if nbytes is None:
            nbytes = src.size - src_offset
        if src is dst:
            lo1, hi1 = src_offset, src_offset + nbytes
            lo2, hi2 = dst_offset, dst_offset + nbytes
            if lo1 < hi2 and lo2 < hi1:
                raise CLError(ErrorCode.CL_MEM_COPY_OVERLAP)
        data = src.read(src_offset, nbytes)
        dst.write(dst_offset, data)
        duration = nbytes / DEVICE_COPY_BANDWIDTH
        return self._enqueue(
            CL_COMMAND_COPY_BUFFER, t, duration, wait_for, self._device_schedule("copy")
        )

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size: Sequence[int],
        t: float,
        local_size: Optional[Sequence[int]] = None,
        global_offset: Optional[Sequence[int]] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Execute a kernel (eagerly) and charge device time for it."""
        if kernel.context is not self.context:
            raise CLError(ErrorCode.CL_INVALID_KERNEL, "kernel from another context")
        max_wg = self.device.hw.spec.max_work_group_size
        if local_size is not None:
            wg = 1
            for v in local_size:
                wg *= int(v)
            require(
                wg <= max_wg,
                ErrorCode.CL_INVALID_WORK_GROUP_SIZE,
                f"work-group size {wg} exceeds device limit {max_wg}",
            )
        args = kernel.bound_args()
        from repro.clc.errors import CLCRuntimeError

        try:
            stats = clc_execute(
                kernel.compiled,
                global_size,
                args,
                local_size=local_size,
                global_offset=global_offset,
            )
        except CLCRuntimeError as exc:
            text = str(exc)
            if "local size" in text or "work dimensions" in text or "dimensionality" in text:
                raise CLError(ErrorCode.CL_INVALID_WORK_GROUP_SIZE, text) from exc
            raise CLError(ErrorCode.CL_OUT_OF_RESOURCES, text) from exc
        cost = kernel_cost(stats, self.device.hw.spec, self.workload_scale)
        return self._enqueue(
            CL_COMMAND_NDRANGE_KERNEL,
            t,
            cost.seconds,
            wait_for,
            self._device_schedule(f"kernel:{kernel.name}"),
        )

    def enqueue_marker(self, t: float) -> Event:
        return self._enqueue(CL_COMMAND_MARKER, t, 0.0, None, lambda r, d: (r, r))

    def enqueue_barrier(self, t: float, wait_for: Optional[Sequence[Event]] = None) -> Event:
        return self._enqueue(CL_COMMAND_BARRIER, t, 0.0, wait_for, lambda r, d: (r, r))

    # ------------------------------------------------------------------
    def _check_buffer(self, buffer: Buffer) -> None:
        if not isinstance(buffer, Buffer):
            raise CLError(ErrorCode.CL_INVALID_MEM_OBJECT, f"not a buffer: {buffer!r}")
        if buffer.context is not self.context:
            raise CLError(ErrorCode.CL_INVALID_MEM_OBJECT, "buffer from another context")

    def finish(self, t: float) -> float:
        """``clFinish``: returns the time all enqueued commands complete."""
        latest = t
        for ev in self.events:
            if not ev.resolved:
                raise CLError(
                    ErrorCode.CL_INVALID_OPERATION,
                    "deadlock: clFinish with commands gated on an incomplete user event",
                )
            latest = max(latest, ev.end)
        return latest

    def flush(self, t: float) -> float:
        return t

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommandQueue dev={self.device.name!r} events={len(self.events)}>"
