"""Platform and device objects."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.device import ComputeDevice
from repro.hw.node import Host
from repro.hw.specs import DeviceType
from repro.ocl.constants import (
    CL_DEVICE_TYPE_ACCELERATOR,
    CL_DEVICE_TYPE_ALL,
    CL_DEVICE_TYPE_CPU,
    CL_DEVICE_TYPE_DEFAULT,
    CL_DEVICE_TYPE_GPU,
    ErrorCode,
)
from repro.ocl.errors import CLError


def device_type_bits(dt: DeviceType) -> int:
    return {
        DeviceType.CPU: CL_DEVICE_TYPE_CPU,
        DeviceType.GPU: CL_DEVICE_TYPE_GPU,
        DeviceType.ACCELERATOR: CL_DEVICE_TYPE_ACCELERATOR,
    }.get(dt, CL_DEVICE_TYPE_DEFAULT)


class Device:
    """An OpenCL device: wraps a hardware :class:`ComputeDevice`."""

    def __init__(self, platform: "Platform", hw_device: ComputeDevice) -> None:
        self.platform = platform
        self.hw = hw_device
        self.available = True

    @property
    def host(self) -> Host:
        return self.hw.host

    @property
    def name(self) -> str:
        return self.hw.spec.name

    @property
    def type_bits(self) -> int:
        return device_type_bits(self.hw.spec.device_type)

    def info(self) -> Dict[str, object]:
        """All device info values (``clGetDeviceInfo``)."""
        spec = self.hw.spec
        return {
            "TYPE": self.type_bits,
            "NAME": spec.name,
            "VENDOR": spec.vendor,
            "MAX_COMPUTE_UNITS": spec.compute_units,
            "MAX_CLOCK_FREQUENCY": spec.clock_mhz,
            "GLOBAL_MEM_SIZE": spec.global_mem,
            "LOCAL_MEM_SIZE": spec.local_mem,
            "MAX_MEM_ALLOC_SIZE": spec.max_alloc,
            "MAX_WORK_GROUP_SIZE": spec.max_work_group_size,
            "VERSION": spec.version,
            "DRIVER_VERSION": spec.driver_version,
            "AVAILABLE": self.available,
        }

    def get_info(self, key: str) -> object:
        info = self.info()
        if key not in info:
            raise CLError(ErrorCode.CL_INVALID_VALUE, f"unknown device info key {key!r}")
        return info[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.name!r} on {self.host.name if self.host else '?'}>"


class Platform:
    """One vendor OpenCL platform on one host."""

    def __init__(self, host: Host, name: str = "repro-ocl", vendor: str = "repro") -> None:
        self.host = host
        self.name = name
        self.vendor = vendor
        self.version = "OpenCL 1.1 repro"
        self.devices: List[Device] = [Device(self, d) for d in host.devices]

    def get_devices(self, device_type: int = CL_DEVICE_TYPE_ALL) -> List[Device]:
        """``clGetDeviceIDs``; raises CL_DEVICE_NOT_FOUND when empty."""
        if device_type == CL_DEVICE_TYPE_ALL:
            found = list(self.devices)
        elif device_type == CL_DEVICE_TYPE_DEFAULT:
            found = self.devices[:1]
        else:
            found = [d for d in self.devices if d.type_bits & device_type]
        if not found:
            raise CLError(ErrorCode.CL_DEVICE_NOT_FOUND)
        return found

    def info(self) -> Dict[str, object]:
        return {
            "NAME": self.name,
            "VENDOR": self.vendor,
            "VERSION": self.version,
            "PROFILE": "FULL_PROFILE",
            "EXTENSIONS": "cl_khr_icd cl_repro_float_atomics",
        }

    def get_info(self, key: str) -> object:
        info = self.info()
        if key not in info:
            raise CLError(ErrorCode.CL_INVALID_VALUE, f"unknown platform info key {key!r}")
        return info[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Platform {self.name!r} on {self.host.name!r}>"
