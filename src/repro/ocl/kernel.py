"""Kernel objects: argument binding and dispatch preparation."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.clc import LocalMemory
from repro.clc.driver import CompiledKernel
from repro.clc.types import PointerType
from repro.ocl.constants import ErrorCode
from repro.ocl.errors import CLError, require
from repro.ocl.memory import Buffer
from repro.ocl.program import Program

_UNSET = object()


class Kernel:
    """``clCreateKernel`` result."""

    def __init__(self, program: Program, name: str) -> None:
        compiled = program.require_built()
        if name not in compiled.kernels:
            raise CLError(ErrorCode.CL_INVALID_KERNEL_NAME, f"no kernel {name!r}")
        self.program = program
        self.name = name
        self.compiled: CompiledKernel = compiled.kernels[name]
        self.args: List[object] = [_UNSET] * self.compiled.num_args
        self.refcount = 1

    @property
    def context(self):
        return self.program.context

    @property
    def num_args(self) -> int:
        return self.compiled.num_args

    def set_arg(self, index: int, value: object) -> None:
        """``clSetKernelArg``: a :class:`Buffer`, a scalar, or
        :class:`LocalMemory` for ``__local`` parameters."""
        require(
            0 <= index < self.num_args,
            ErrorCode.CL_INVALID_ARG_INDEX,
            f"kernel {self.name!r} has {self.num_args} args, got index {index}",
        )
        kind = self.compiled.arg_kinds[index]
        if kind == "buffer":
            if not isinstance(value, Buffer):
                raise CLError(
                    ErrorCode.CL_INVALID_ARG_VALUE,
                    f"argument {index} of {self.name!r} must be a Buffer",
                )
            if value.context is not self.context:
                raise CLError(
                    ErrorCode.CL_INVALID_MEM_OBJECT,
                    "buffer belongs to a different context",
                )
        elif kind == "local":
            if not isinstance(value, LocalMemory):
                raise CLError(
                    ErrorCode.CL_INVALID_ARG_VALUE,
                    f"argument {index} of {self.name!r} is __local; pass LocalMemory(nbytes)",
                )
        else:  # value
            if isinstance(value, (Buffer, LocalMemory)):
                raise CLError(
                    ErrorCode.CL_INVALID_ARG_VALUE,
                    f"argument {index} of {self.name!r} is a scalar",
                )
            if not isinstance(value, (int, float, bool, np.integer, np.floating, np.bool_)):
                raise CLError(
                    ErrorCode.CL_INVALID_ARG_VALUE,
                    f"argument {index} of {self.name!r}: unsupported value {value!r}",
                )
        self.args[index] = value

    def bound_args(self) -> List[object]:
        """Arguments ready for the clc runtime (buffers become typed views)."""
        out: List[object] = []
        for i, (value, sym) in enumerate(zip(self.args, self.compiled.info.param_symbols)):
            if value is _UNSET:
                raise CLError(
                    ErrorCode.CL_INVALID_KERNEL_ARGS,
                    f"argument {i} ({sym.name!r}) of {self.name!r} is not set",
                )
            if isinstance(value, Buffer):
                out.append(value.typed_view(sym.type.pointee.np_dtype))
            else:
                out.append(value)
        return out

    def buffer_args(self) -> List[Buffer]:
        return [a for a in self.args if isinstance(a, Buffer)]

    def arg_info(self, index: int) -> str:
        require(
            0 <= index < self.num_args,
            ErrorCode.CL_INVALID_ARG_INDEX,
            f"bad arg index {index}",
        )
        sym = self.compiled.info.param_symbols[index]
        return str(sym.type)

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name!r} args={self.num_args}>"
