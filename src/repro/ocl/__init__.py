"""A pure-Python OpenCL 1.1 runtime (the simulated "vendor" implementation).

This is the implementation installed on every simulated node — the thing
the dOpenCL daemon forwards API calls *to* (the paper calls dOpenCL a
"meta-implementation" for exactly this reason).  It implements the OpenCL
object model — platforms, devices, contexts, command queues, buffers,
programs, kernels, events (including user events and callbacks) — with:

* real kernel execution through :mod:`repro.clc` (results are correct and
  testable), and
* virtual-time command scheduling on the owning device's timeline
  (queue serialisation, PCIe transfer costs, launch overheads).

:class:`repro.ocl.api.NativeAPI` exposes the C-style flat ``cl*`` API that
applications program against; the dOpenCL client driver exposes the same
surface, which is what makes applications "unmodified" when they switch
(the paper's headline property).
"""

from repro.ocl.constants import (
    CL_COMPLETE,
    CL_DEVICE_TYPE_ALL,
    CL_DEVICE_TYPE_CPU,
    CL_DEVICE_TYPE_GPU,
    CL_MEM_COPY_HOST_PTR,
    CL_MEM_READ_ONLY,
    CL_MEM_READ_WRITE,
    CL_MEM_WRITE_ONLY,
    CL_QUEUED,
    CL_RUNNING,
    CL_SUBMITTED,
    ErrorCode,
)
from repro.ocl.errors import CLError
from repro.ocl.platform import Device, Platform
from repro.ocl.context import Context
from repro.ocl.memory import Buffer
from repro.ocl.event import Event, UserEvent
from repro.ocl.queue import CommandQueue
from repro.ocl.program import Program
from repro.ocl.kernel import Kernel
from repro.ocl.api import NativeAPI
from repro.ocl.icd import ICDLoader

__all__ = [
    "Buffer",
    "CLError",
    "CL_COMPLETE",
    "CL_DEVICE_TYPE_ALL",
    "CL_DEVICE_TYPE_CPU",
    "CL_DEVICE_TYPE_GPU",
    "CL_MEM_COPY_HOST_PTR",
    "CL_MEM_READ_ONLY",
    "CL_MEM_READ_WRITE",
    "CL_MEM_WRITE_ONLY",
    "CL_QUEUED",
    "CL_RUNNING",
    "CL_SUBMITTED",
    "CommandQueue",
    "Context",
    "Device",
    "ErrorCode",
    "Event",
    "ICDLoader",
    "Kernel",
    "NativeAPI",
    "Platform",
    "Program",
    "UserEvent",
]
