"""Program objects: runtime compilation of OpenCL C source."""

from __future__ import annotations

from typing import Dict, Optional

from repro.clc import CLCompileError, compile_program
from repro.clc.driver import CompiledProgram, program_digest
from repro.ocl.constants import ErrorCode
from repro.ocl.context import Context
from repro.ocl.errors import CLError, require

#: Build cost model: fixed front-end cost plus per-source-byte cost,
#: charged on the building host's CPU.
BUILD_BASE_SECONDS = 0.030
BUILD_PER_BYTE_SECONDS = 4e-6


def build_duration(source: str) -> float:
    return BUILD_BASE_SECONDS + BUILD_PER_BYTE_SECONDS * len(source)


class Program:
    """``clCreateProgramWithSource`` result."""

    def __init__(self, context: Context, source: str) -> None:
        require(bool(source.strip()), ErrorCode.CL_INVALID_VALUE, "empty program source")
        self.context = context
        self.source = source
        self.options = ""
        self.compiled: Optional[CompiledProgram] = None
        self.build_status: str = "NONE"  # NONE | SUCCESS | ERROR
        self.build_log: str = ""
        self.refcount = 1
        self._digest: Optional[str] = None

    @property
    def digest(self) -> str:
        """Content address of the source (``sha256`` hex, computed
        lazily once): the first half of every build-cache key."""
        if self._digest is None:
            self._digest = program_digest(self.source)
        return self._digest

    def adopt(self, compiled: CompiledProgram, options: str = "") -> None:
        """Install an already-compiled build outcome (a build-cache hit
        or a shipped cluster binary): the program becomes built without
        invoking the compiler or charging ``build_duration``."""
        self.options = options
        self.compiled = compiled
        self.build_status = "SUCCESS"
        self.build_log = ""

    def adopt_failure(self, log: str, options: str = "") -> None:
        """Install a negatively-cached build failure: the program enters
        the same ``ERROR`` state (identical ``build_log``) a real
        compile of this source would have produced."""
        self.options = options
        self.compiled = None
        self.build_status = "ERROR"
        self.build_log = log

    def build(self, options: str = "", t: float = 0.0) -> float:
        """``clBuildProgram``; returns build completion time.

        On failure raises ``CL_BUILD_PROGRAM_FAILURE`` and records the
        compiler diagnostics for ``clGetProgramBuildInfo``.
        """
        self.options = options
        duration = build_duration(self.source)
        done = t + duration
        try:
            self.compiled = compile_program(self.source, options)
        except CLCompileError as exc:
            self.build_status = "ERROR"
            self.build_log = str(exc)
            raise CLError(ErrorCode.CL_BUILD_PROGRAM_FAILURE, self.build_log) from exc
        self.build_status = "SUCCESS"
        self.build_log = ""
        return done

    def build_info(self, key: str) -> object:
        values: Dict[str, object] = {
            "STATUS": self.build_status,
            "LOG": self.build_log,
            "OPTIONS": self.options,
        }
        if key not in values:
            raise CLError(ErrorCode.CL_INVALID_VALUE, f"unknown build info key {key!r}")
        return values[key]

    def require_built(self) -> CompiledProgram:
        if self.compiled is None:
            raise CLError(
                ErrorCode.CL_INVALID_PROGRAM_EXECUTABLE,
                "program has not been built successfully",
            )
        return self.compiled

    @property
    def kernel_names(self):
        return sorted(self.require_built().kernels)

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {len(self.source)}B status={self.build_status}>"
