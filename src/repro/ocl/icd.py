"""ICD loader emulation: several OpenCL implementations side by side.

The OpenCL Installable Client Driver mechanism lets one application see
platforms from multiple vendors at once.  The paper leans on it
(Section III-B): the dOpenCL client driver "is compatible with the ICD
loader", so applications can combine remote dOpenCL devices with local
devices from the native implementation.

:class:`ICDLoader` exposes the same flat API surface and routes each call
to the provider that owns the object being operated on.  Providers must
share one :class:`~repro.sim.clock.VirtualClock` (one application thread,
one timeline).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.ocl.constants import CL_DEVICE_TYPE_ALL, ErrorCode
from repro.ocl.errors import CLError

_DELEGATED = [
    "clGetPlatformInfo",
    "clGetDeviceIDs",
    "clGetDeviceInfo",
    "clRetainContext",
    "clReleaseContext",
    "clCreateCommandQueue",
    "clRetainCommandQueue",
    "clReleaseCommandQueue",
    "clFinish",
    "clFlush",
    "clCreateBuffer",
    "clRetainMemObject",
    "clReleaseMemObject",
    "clEnqueueWriteBuffer",
    "clEnqueueReadBuffer",
    "clEnqueueCopyBuffer",
    "clCreateProgramWithSource",
    "clBuildProgram",
    "clGetProgramBuildInfo",
    "clRetainProgram",
    "clReleaseProgram",
    "clCreateKernel",
    "clCreateKernelsInProgram",
    "clSetKernelArg",
    "clRetainKernel",
    "clReleaseKernel",
    "clEnqueueNDRangeKernel",
    "clGetEventInfo",
    "clGetEventProfilingInfo",
    "clSetEventCallback",
    "clCreateUserEvent",
    "clSetUserEventStatus",
    "clRetainEvent",
    "clReleaseEvent",
]


class ICDLoader:
    """Multiplexes several API providers behind one flat API."""

    def __init__(self, providers: Sequence[object]) -> None:
        if not providers:
            raise CLError(ErrorCode.CL_INVALID_PLATFORM, "no ICD providers")
        clocks = {id(getattr(p, "clock")) for p in providers}
        if len(clocks) != 1:
            raise CLError(
                ErrorCode.CL_INVALID_VALUE,
                "all ICD providers must share one VirtualClock",
            )
        self.providers = list(providers)
        self.clock = providers[0].clock
        self._platform_owner: Dict[int, object] = {}
        for provider in self.providers:
            for platform in provider.clGetPlatformIDs():
                self._platform_owner[id(platform)] = provider
        for name in _DELEGATED:
            setattr(self, name, self._make_delegate(name))

    # ------------------------------------------------------------------
    def clGetPlatformIDs(self) -> List[object]:
        out: List[object] = []
        for provider in self.providers:
            out.extend(provider.clGetPlatformIDs())
        return out

    def clCreateContext(self, devices: Sequence[object]):
        provider = self._owner_of_platform(devices[0].platform)
        for dev in devices[1:]:
            if self._owner_of_platform(dev.platform) is not provider:
                raise CLError(
                    ErrorCode.CL_INVALID_DEVICE,
                    "cannot mix devices from different ICD providers in one context",
                )
        return provider.clCreateContext(devices)

    def clWaitForEvents(self, events: Sequence[object]) -> None:
        # Events may come from different providers; wait on each.
        for ev in events:
            self._owner_of(ev).clWaitForEvents([ev])

    # ------------------------------------------------------------------
    def _owner_of_platform(self, platform: object):
        provider = self._platform_owner.get(id(platform))
        if provider is None:
            raise CLError(ErrorCode.CL_INVALID_PLATFORM, f"unknown platform {platform!r}")
        return provider

    def _owner_of(self, obj: object):
        """Resolve the provider owning an API object (duck-typed)."""
        if id(obj) in self._platform_owner:  # the object IS a platform
            return self._platform_owner[id(obj)]
        platform = getattr(obj, "platform", None)
        if platform is not None and id(platform) in self._platform_owner:
            return self._platform_owner[id(platform)]
        context = getattr(obj, "context", None)
        if context is None:
            program = getattr(obj, "program", None)
            if program is not None:
                context = program.context
        if context is not None:
            platform = getattr(context, "platform", None)
            if platform is not None and id(platform) in self._platform_owner:
                return self._platform_owner[id(platform)]
        raise CLError(ErrorCode.CL_INVALID_VALUE, f"cannot route {obj!r} to a provider")

    def _make_delegate(self, name: str):
        def delegate(obj, *args, **kwargs):
            return getattr(self._owner_of(obj), name)(obj, *args, **kwargs)

        delegate.__name__ = name
        return delegate

    @property
    def now(self) -> float:
        return self.clock.now
