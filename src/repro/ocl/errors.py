"""OpenCL error exception."""

from __future__ import annotations

from repro.ocl.constants import ErrorCode


class CLError(Exception):
    """Raised where the C API would return a negative error code."""

    def __init__(self, code: ErrorCode, message: str = "") -> None:
        self.code = ErrorCode(code)
        self.message = message
        detail = f": {message}" if message else ""
        super().__init__(f"{self.code.name} ({self.code.value}){detail}")


def require(condition: bool, code: ErrorCode, message: str = "") -> None:
    """Validation helper: raise :class:`CLError` unless ``condition``."""
    if not condition:
        raise CLError(code, message)
