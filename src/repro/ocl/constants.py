"""OpenCL constants and error codes (mirroring CL/cl.h values)."""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Error/return codes; values match the OpenCL 1.1 headers."""

    CL_SUCCESS = 0
    CL_DEVICE_NOT_FOUND = -1
    CL_DEVICE_NOT_AVAILABLE = -2
    CL_COMPILER_NOT_AVAILABLE = -3
    CL_MEM_OBJECT_ALLOCATION_FAILURE = -4
    CL_OUT_OF_RESOURCES = -5
    CL_OUT_OF_HOST_MEMORY = -6
    CL_PROFILING_INFO_NOT_AVAILABLE = -7
    CL_MEM_COPY_OVERLAP = -8
    CL_BUILD_PROGRAM_FAILURE = -11
    CL_MAP_FAILURE = -12
    CL_INVALID_VALUE = -30
    CL_INVALID_DEVICE_TYPE = -31
    CL_INVALID_PLATFORM = -32
    CL_INVALID_DEVICE = -33
    CL_INVALID_CONTEXT = -34
    CL_INVALID_QUEUE_PROPERTIES = -35
    CL_INVALID_COMMAND_QUEUE = -36
    CL_INVALID_HOST_PTR = -37
    CL_INVALID_MEM_OBJECT = -38
    CL_INVALID_IMAGE_FORMAT_DESCRIPTOR = -39
    CL_INVALID_IMAGE_SIZE = -40
    CL_INVALID_SAMPLER = -41
    CL_INVALID_BINARY = -42
    CL_INVALID_BUILD_OPTIONS = -43
    CL_INVALID_PROGRAM = -44
    CL_INVALID_PROGRAM_EXECUTABLE = -45
    CL_INVALID_KERNEL_NAME = -46
    CL_INVALID_KERNEL_DEFINITION = -47
    CL_INVALID_KERNEL = -48
    CL_INVALID_ARG_INDEX = -49
    CL_INVALID_ARG_VALUE = -50
    CL_INVALID_ARG_SIZE = -51
    CL_INVALID_KERNEL_ARGS = -52
    CL_INVALID_WORK_DIMENSION = -53
    CL_INVALID_WORK_GROUP_SIZE = -54
    CL_INVALID_WORK_ITEM_SIZE = -55
    CL_INVALID_GLOBAL_OFFSET = -56
    CL_INVALID_EVENT_WAIT_LIST = -57
    CL_INVALID_EVENT = -58
    CL_INVALID_OPERATION = -59
    CL_INVALID_GL_OBJECT = -60
    CL_INVALID_BUFFER_SIZE = -61
    CL_INVALID_MIP_LEVEL = -62
    CL_INVALID_GLOBAL_WORK_SIZE = -63
    # dOpenCL extension errors (Section III-C / IV)
    CL_CONNECTION_ERROR_WWU = -1001
    CL_INVALID_SERVER_WWU = -1002
    CL_DEVICE_NOT_ASSIGNED_WWU = -1003


# -- device types (bitfield) ------------------------------------------------
CL_DEVICE_TYPE_DEFAULT = 1 << 0
CL_DEVICE_TYPE_CPU = 1 << 1
CL_DEVICE_TYPE_GPU = 1 << 2
CL_DEVICE_TYPE_ACCELERATOR = 1 << 3
CL_DEVICE_TYPE_ALL = 0xFFFFFFFF

# -- memory flags (bitfield) ----------------------------------------------
CL_MEM_READ_WRITE = 1 << 0
CL_MEM_WRITE_ONLY = 1 << 1
CL_MEM_READ_ONLY = 1 << 2
CL_MEM_USE_HOST_PTR = 1 << 3
CL_MEM_ALLOC_HOST_PTR = 1 << 4
CL_MEM_COPY_HOST_PTR = 1 << 5

# -- command queue properties ------------------------------------------------
CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE = 1 << 0
CL_QUEUE_PROFILING_ENABLE = 1 << 1

# -- event command execution status -------------------------------------------
CL_COMPLETE = 0
CL_RUNNING = 1
CL_SUBMITTED = 2
CL_QUEUED = 3

# -- command types (subset) ---------------------------------------------------
CL_COMMAND_NDRANGE_KERNEL = 0x11F0
CL_COMMAND_READ_BUFFER = 0x11F3
CL_COMMAND_WRITE_BUFFER = 0x11F4
CL_COMMAND_COPY_BUFFER = 0x11F5
CL_COMMAND_MARKER = 0x11FE
CL_COMMAND_BARRIER = 0x1205
CL_COMMAND_USER = 0x1204

# -- profiling info ------------------------------------------------------------
CL_PROFILING_COMMAND_QUEUED = 0x1280
CL_PROFILING_COMMAND_SUBMIT = 0x1281
CL_PROFILING_COMMAND_START = 0x1282
CL_PROFILING_COMMAND_END = 0x1283

# -- device info keys (string-keyed in this runtime for clarity) ---------------
DEVICE_INFO_KEYS = (
    "TYPE",
    "NAME",
    "VENDOR",
    "MAX_COMPUTE_UNITS",
    "MAX_CLOCK_FREQUENCY",
    "GLOBAL_MEM_SIZE",
    "LOCAL_MEM_SIZE",
    "MAX_MEM_ALLOC_SIZE",
    "MAX_WORK_GROUP_SIZE",
    "VERSION",
    "DRIVER_VERSION",
    "AVAILABLE",
)
