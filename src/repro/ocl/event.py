"""Events: command completion, dependencies, callbacks, profiling.

Commands execute *data-eagerly* (NumPy effects happen at enqueue, in
program order) but their *timing* resolves lazily: an event's start/end
are computed once every dependency has resolved, allocating device or bus
time on the owning resource's timeline.  This makes user-event-gated
commands (the mechanism dOpenCL's event-consistency protocol relies on,
Section III-D) work naturally.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.ocl.constants import (
    CL_COMPLETE,
    CL_COMMAND_USER,
    CL_QUEUED,
    CL_SUBMITTED,
    CL_PROFILING_COMMAND_END,
    CL_PROFILING_COMMAND_QUEUED,
    CL_PROFILING_COMMAND_START,
    CL_PROFILING_COMMAND_SUBMIT,
    ErrorCode,
)
from repro.ocl.errors import CLError

#: Event callback: fn(event, status, time)
EventCallback = Callable[["Event", int, float], None]


class Event:
    """A command event with virtual-time stamps."""

    def __init__(self, context, command_type: int, queued_at: float) -> None:
        self.context = context
        self.command_type = command_type
        self.queued_at = queued_at
        self.submitted_at = queued_at
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self._callbacks: List[EventCallback] = []
        self._dependents: List[Callable[[], None]] = []
        self.refcount = 1

    # ------------------------------------------------------------------
    @property
    def resolved(self) -> bool:
        return self.end is not None

    @property
    def status(self) -> int:
        return CL_COMPLETE if self.resolved else CL_QUEUED

    def _mark_resolved(self, start: float, end: float) -> None:
        if self.resolved:
            raise CLError(ErrorCode.CL_INVALID_EVENT, "event resolved twice")
        self.start = start
        self.end = end
        for cb in self._callbacks:
            cb(self, CL_COMPLETE, end)
        self._callbacks.clear()
        dependents, self._dependents = self._dependents, []
        for kick in dependents:
            kick()

    def on_resolve(self, kick: Callable[[], None]) -> None:
        """Internal: notify when this event resolves (queue machinery)."""
        if self.resolved:
            kick()
        else:
            self._dependents.append(kick)

    # -- public API ------------------------------------------------------
    def set_callback(self, callback: EventCallback, status: int = CL_COMPLETE) -> None:
        """``clSetEventCallback`` (CL_COMPLETE only, like the paper uses)."""
        if status != CL_COMPLETE:
            raise CLError(ErrorCode.CL_INVALID_VALUE, "only CL_COMPLETE callbacks supported")
        if self.resolved:
            callback(self, CL_COMPLETE, self.end)
        else:
            self._callbacks.append(callback)

    def wait(self, t: float) -> float:
        """Block until complete; returns the (virtual) resume time."""
        if not self.resolved:
            raise CLError(
                ErrorCode.CL_INVALID_EVENT_WAIT_LIST,
                "deadlock: waiting on an event that can never complete "
                "(incomplete user event dependency?)",
            )
        return max(t, self.end)

    def profiling_info(self, param: int) -> float:
        if not self.resolved:
            raise CLError(ErrorCode.CL_PROFILING_INFO_NOT_AVAILABLE)
        values = {
            CL_PROFILING_COMMAND_QUEUED: self.queued_at,
            CL_PROFILING_COMMAND_SUBMIT: self.submitted_at,
            CL_PROFILING_COMMAND_START: self.start,
            CL_PROFILING_COMMAND_END: self.end,
        }
        if param not in values:
            raise CLError(ErrorCode.CL_INVALID_VALUE, f"bad profiling param {param}")
        return values[param]

    def retain(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done@{self.end:.6f}" if self.resolved else "pending"
        return f"<Event cmd=0x{self.command_type:x} {state}>"


class UserEvent(Event):
    """``clCreateUserEvent`` — completed explicitly by the application (or,
    in dOpenCL, by the client driver when the original event completes)."""

    def __init__(self, context, created_at: float) -> None:
        super().__init__(context, CL_COMMAND_USER, created_at)
        self._user_status = CL_SUBMITTED

    @property
    def status(self) -> int:
        return CL_COMPLETE if self.resolved else self._user_status

    def set_status(self, status: int, t: float) -> None:
        """``clSetUserEventStatus``; only CL_COMPLETE (or negative) once."""
        if self.resolved:
            raise CLError(
                ErrorCode.CL_INVALID_OPERATION, "user event status already set"
            )
        if status != CL_COMPLETE and status >= 0:
            raise CLError(ErrorCode.CL_INVALID_VALUE, "status must be CL_COMPLETE or negative")
        self._mark_resolved(t, t)
