"""SPMD launcher: run one generator program on N ranks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import repro.mpi.collectives  # noqa: F401 — attaches collective methods
from repro.hw.node import Host
from repro.mpi.comm import Communicator, World
from repro.net.network import Network
from repro.sim.process import Environment


@dataclass
class MPIRunResult:
    """Outcome of one SPMD execution."""

    results: List[Any]  # per-rank return values
    elapsed: float  # simulated wall-clock of the whole job
    env: Environment

    @property
    def root_result(self) -> Any:
        return self.results[0]


#: MPI runtime startup cost per rank (process launch, wire-up), matching
#: the paper's observation that "MPI ... requires the program binaries to
#: be present on all nodes before execution" — starting the job is not free.
MPI_INIT_OVERHEAD = 5e-3


def mpi_run(
    network: Network,
    hosts: Sequence[Host],
    main: Callable[..., Any],
    args: Sequence[Any] = (),
    per_rank_args: Optional[Sequence[Sequence[Any]]] = None,
) -> MPIRunResult:
    """Execute ``main(comm, *args)`` on every rank (mpiexec-style).

    ``main`` must be a generator function; ranks run as cooperative
    processes over the shared simulated network.
    """
    env = Environment()
    world = World(env, network, list(hosts))

    def wrap(rank: int):
        comm = world.comm(rank)
        yield env.timeout(MPI_INIT_OVERHEAD)
        rank_args = per_rank_args[rank] if per_rank_args is not None else args
        result = yield from main(comm, *rank_args)
        return result

    processes = [env.process(wrap(rank), name=f"rank{rank}") for rank in range(world.size)]
    env.run(until=env.all_of(processes))
    return MPIRunResult(results=[p.value for p in processes], elapsed=env.now, env=env)
