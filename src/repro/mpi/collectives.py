"""Collective operations built on point-to-point messaging.

Broadcast uses a binomial tree (log2 rounds, like production MPIs of the
paper's era); gather/scatter are linear at the root — which is exactly
why a many-to-one result gather serialises on the root's NIC.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.mpi.comm import Communicator, MPIError


def bcast(comm: Communicator, obj: Any, root: int = 0):
    """Binomial-tree broadcast (the classic MPICH algorithm); every rank
    returns the object."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    rel = (rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            src = ((rel - mask) + root) % size
            obj = yield from comm.recv(source=src, tag=91)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            dst = ((rel + mask) + root) % size
            yield from comm.send(obj, dst, tag=91)
        mask >>= 1
    return obj


def gather(comm: Communicator, obj: Any, root: int = 0):
    """Linear gather; returns the list at the root, None elsewhere."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: List[Any] = [None] * size
        out[root] = obj
        for src in range(size):
            if src == root:
                continue
            out[src] = yield from comm.recv(source=src, tag=92)
        return out
    yield from comm.send(obj, root, tag=92)
    return None


def scatter(comm: Communicator, objs: Optional[List[Any]], root: int = 0):
    """Linear scatter; every rank returns its element."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if objs is None or len(objs) != size:
            raise MPIError(f"scatter needs exactly {size} items at the root")
        for dst in range(size):
            if dst != root:
                yield from comm.send(objs[dst], dst, tag=93)
        return objs[root]
    item = yield from comm.recv(source=root, tag=93)
    return item


def reduce(comm: Communicator, obj: Any, op: Callable[[Any, Any], Any], root: int = 0):
    """Gather + fold at the root (rank order, deterministic)."""
    values = yield from gather(comm, obj, root)
    if comm.rank != root:
        return None
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def allreduce(comm: Communicator, obj: Any, op: Callable[[Any, Any], Any]):
    total = yield from reduce(comm, obj, op, root=0)
    total = yield from bcast(comm, total, root=0)
    return total


def allgather(comm: Communicator, obj: Any):
    values = yield from gather(comm, obj, root=0)
    values = yield from bcast(comm, values, root=0)
    return values


def barrier(comm: Communicator):
    """Gather + broadcast of a token."""
    yield from gather(comm, None, root=0)
    yield from bcast(comm, None, root=0)


# Attach as methods for an mpi4py-ish call style.
Communicator.bcast = lambda self, obj, root=0: bcast(self, obj, root)
Communicator.gather = lambda self, obj, root=0: gather(self, obj, root)
Communicator.scatter = lambda self, objs, root=0: scatter(self, objs, root)
Communicator.reduce = lambda self, obj, op, root=0: reduce(self, obj, op, root)
Communicator.allreduce = lambda self, obj, op: allreduce(self, obj, op)
Communicator.allgather = lambda self, obj: allgather(self, obj)
Communicator.barrier = lambda self: barrier(self)
