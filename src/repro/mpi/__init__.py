"""A miniature MPI on the simulation substrate.

The paper's Fig. 4 baseline is "MPI+OpenCL": the Mandelbrot application
ported to explicit message passing (rank/size decomposition,
``MPI_Gather`` of the tiles, init/finalise).  This package provides the
needed subset with real message-passing semantics on the simulated
network: blocking send/recv, Bcast/Scatter/Gather/Reduce/Allreduce/
Barrier, SPMD launch, and clock bridging to the per-rank native OpenCL
runtime.

Rank programs are generators (cooperative processes of
:class:`repro.sim.Environment`); communication calls are used as
``yield from comm.send(...)``.
"""

from repro.mpi.comm import Communicator, MPIError
from repro.mpi.runner import MPIRunResult, mpi_run

__all__ = ["Communicator", "MPIError", "MPIRunResult", "mpi_run"]
