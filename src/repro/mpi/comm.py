"""Point-to-point communication and the communicator object."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.hw.node import Host
from repro.net.codec import CodecError, encoded_size
from repro.net.frames import transfer_duration
from repro.net.network import Network
from repro.net.streams import payload_nbytes as _raw_payload_nbytes
from repro.sim.channel import Channel
from repro.sim.process import Environment

#: Per-message software overhead (matching, envelope processing).
MPI_OVERHEAD = 3e-6

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(RuntimeError):
    pass


def payload_nbytes(obj: Any) -> int:
    """Bytes on the wire for a message payload.

    Raw buffers (ndarray/bytes) travel unenveloped, so they are charged
    their raw length (via :func:`repro.net.streams.payload_nbytes`, the
    bulk-stream sizing rule); everything else is charged its codec size
    via :func:`repro.net.codec.encoded_size`, which computes the size
    arithmetically — nothing is materialised regardless of payload size
    (O(1) even for ndarray/bytes leaves nested inside containers).
    """
    if isinstance(obj, (np.ndarray, bytes, bytearray, memoryview)):
        return _raw_payload_nbytes(obj)
    try:
        return encoded_size(obj)
    except CodecError:
        # Unencodable Python object: approximate with repr length (the
        # mini-MPI allows arbitrary objects like pickles would).
        return len(repr(obj).encode())


class World:
    """Shared state of one SPMD run: hosts, channels, environment."""

    def __init__(self, env: Environment, network: Network, hosts: list) -> None:
        if not hosts:
            raise MPIError("world needs at least one rank")
        self.env = env
        self.network = network
        self.hosts = hosts
        self.size = len(hosts)
        # one FIFO per (src, dst) pair
        self.channels: Dict[Tuple[int, int], Channel] = {}
        for src in range(self.size):
            for dst in range(self.size):
                if src != dst:
                    self.channels[(src, dst)] = Channel(env, name=f"{src}->{dst}")
        self.barrier_round = 0

    def comm(self, rank: int) -> "Communicator":
        return Communicator(self, rank)


class Communicator:
    """Per-rank communicator (COMM_WORLD semantics)."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def env(self) -> Environment:
        return self.world.env

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def host(self) -> Host:
        return self.world.hosts[self.rank]

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0):
        """Blocking standard-mode send (returns once the message left the
        sender's NIC)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"bad destination rank {dest}")
        if dest == self.rank:
            raise MPIError("send to self would deadlock a blocking pair")
        env = self.env
        nbytes = payload_nbytes(obj)
        spec = self.world.network.spec
        src_host, dst_host = self.host, self.world.hosts[dest]
        if src_host is dst_host:
            # co-located ranks: shared-memory copy
            yield env.timeout(MPI_OVERHEAD + nbytes / 8e9)
            yield self.world.channels[(self.rank, dest)].put((env.now, obj, nbytes, tag, self.rank))
            return
        tx = src_host.nic.send(env.now, nbytes, tag=f"mpi:{self.rank}->{dest}")
        yield env.timeout(max(0.0, tx.end - env.now) + MPI_OVERHEAD)
        arrival_earliest = tx.start + spec.latency
        yield self.world.channels[(self.rank, dest)].put(
            (arrival_earliest, obj, nbytes, tag, self.rank)
        )

    def recv(self, source: int, tag: int = ANY_TAG):
        """Blocking receive; returns the payload object.

        Charges the receiver NIC (serialising concurrent arrivals — the
        effect that makes a many-to-one gather root-bound)."""
        if not 0 <= source < self.size:
            raise MPIError(f"bad source rank {source}")
        env = self.env
        item = yield self.world.channels[(source, self.rank)].get()
        earliest, obj, nbytes, msg_tag, src_rank = item
        if tag != ANY_TAG and msg_tag != tag:
            raise MPIError(f"tag mismatch: wanted {tag}, got {msg_tag}")
        src_host, dst_host = self.world.hosts[src_rank], self.host
        if src_host is dst_host:
            if earliest > env.now:
                yield env.timeout(earliest - env.now)
            return obj
        rx = dst_host.nic.receive(max(env.now, earliest), nbytes, tag=f"mpi:{src_rank}->{self.rank}")
        if rx.end > env.now:
            yield env.timeout(rx.end - env.now)
        return obj

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0):
        yield from self.send(obj, dest, tag)
        result = yield from self.recv(source, tag)
        return result

    # ------------------------------------------------------------------
    # OpenCL clock bridging
    # ------------------------------------------------------------------
    def sync_clock(self, api) -> Any:
        """Bridge a per-rank OpenCL API clock with the SPMD environment.

        Call after a batch of OpenCL work: advances simulated time by the
        OpenCL time consumed; afterwards the two clocks agree."""
        env = self.env
        if api.clock.now > env.now:
            yield env.timeout(api.clock.now - env.now)
        else:
            api.clock.advance_to(env.now)
        return env.now
