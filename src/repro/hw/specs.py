"""Hardware specification catalogue.

All bandwidths are bytes/second, latencies seconds, memory sizes bytes.
``ops_per_second`` is the effective throughput of the abstract scalar
operations counted by the kernel executor (:mod:`repro.clc.runtime`) — a
single calibration constant per device, not a marketing FLOPS figure.

Bandwidth calibration note (see DESIGN.md): the paper's "38.8 GB/s" PCIe
write figure is a pinned-cache artifact; we instead derive self-consistent
numbers from the paper's own ratios (GigE write path ~50x slower than PCIe
write, GigE read path ~4.5x slower than PCIe read, device reads ~15x slower
than writes, iperf effective GigE ~106 MB/s = 85% of 125 MB/s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Tuple

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class DeviceType(enum.Flag):
    """OpenCL device type bits (mirrors ``CL_DEVICE_TYPE_*``)."""

    DEFAULT = 1
    CPU = 2
    GPU = 4
    ACCELERATOR = 8
    ALL = 0xFFFFFFFF


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one OpenCL compute device."""

    name: str
    device_type: DeviceType
    vendor: str
    compute_units: int
    clock_mhz: int
    global_mem: int
    local_mem: int = 32 * KB
    max_work_group_size: int = 1024
    max_alloc: int = 0  # 0 -> global_mem // 4 (the OpenCL minimum rule)
    ops_per_second: float = 1e9
    launch_overhead: float = 20e-6
    version: str = "OpenCL 1.1"
    driver_version: str = "repro-ocl 1.0"

    def __post_init__(self) -> None:
        if self.max_alloc == 0:
            object.__setattr__(self, "max_alloc", self.global_mem // 4)

    def scaled(self, factor: float) -> "DeviceSpec":
        """A copy with throughput scaled by ``factor`` (benchmark rescaling
        for reduced-size workloads; see EXPERIMENTS.md)."""
        return replace(self, ops_per_second=self.ops_per_second * factor)


@dataclass(frozen=True)
class PCIeSpec:
    """Host <-> device bus. Write = host-to-device, read = device-to-host."""

    name: str
    write_bandwidth: float
    read_bandwidth: float
    latency: float

    def scaled(self, factor: float) -> "PCIeSpec":
        return replace(
            self,
            write_bandwidth=self.write_bandwidth * factor,
            read_bandwidth=self.read_bandwidth * factor,
        )


@dataclass(frozen=True)
class LinkSpec:
    """A network technology.

    ``bandwidth`` is the theoretical data rate; ``efficiency`` the fraction
    achievable by a well-tuned transport (the paper measured 85% for GigE
    with iperf); ``latency`` the one-way message latency; ``mtu`` the
    payload per frame used for small-transfer granularity.
    """

    name: str
    bandwidth: float
    efficiency: float
    latency: float
    mtu: int = 1500

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.efficiency

    def scaled(self, factor: float) -> "LinkSpec":
        return replace(self, bandwidth=self.bandwidth * factor)


@dataclass(frozen=True)
class HostSpec:
    """A node: its CPU device, optional GPUs, bus and RAM."""

    name: str
    cpu: DeviceSpec
    gpus: Tuple[DeviceSpec, ...] = ()
    pcie: "PCIeSpec" = None  # type: ignore[assignment]
    ram: int = 16 * GB
    # Per-request daemon/CPU processing overhead (request decode + dispatch).
    request_overhead: float = 12e-6
    # Per-sub-command dispatch cost inside a CommandBatch: the envelope is
    # decoded once (charged as one request_overhead), each coalesced
    # command then only pays this smaller decode+dispatch slice.
    batch_command_overhead: float = 2e-6

    def __post_init__(self) -> None:
        if self.pcie is None:
            object.__setattr__(self, "pcie", PCIE_GEN2_X16)


# ----------------------------------------------------------------------
# Networks (Section V testbeds)
# ----------------------------------------------------------------------
#: Gigabit Ethernet: 125 MB/s theoretical; iperf measured ~106 MB/s (85%).
GIGABIT_ETHERNET = LinkSpec("Gigabit Ethernet", bandwidth=125e6, efficiency=0.85, latency=100e-6, mtu=1500)

#: QDR Infiniband as in the Mandelbrot cluster: ~3.2 GB/s effective.
INFINIBAND_QDR = LinkSpec("Infiniband QDR", bandwidth=4e9, efficiency=0.80, latency=2e-6, mtu=4096)

#: PCIe gen2 x16 with the strong read/write asymmetry the paper measured
#: (device reads ~15x slower than writes).
PCIE_GEN2_X16 = PCIeSpec("PCIe 2.0 x16", write_bandwidth=5.3e9, read_bandwidth=355e6, latency=20e-6)


# ----------------------------------------------------------------------
# Devices (Section V testbeds)
# ----------------------------------------------------------------------
#: A dual-socket Intel Westmere X5650 node (2 x 6 cores, 2.67 GHz) exposed
#: as a single OpenCL CPU device by the AMD APP SDK.
WESTMERE_NODE_CPU = DeviceSpec(
    name="Intel Xeon X5650 (2 sockets, AMD APP)",
    device_type=DeviceType.CPU,
    vendor="Intel",
    compute_units=12,
    clock_mhz=2670,
    global_mem=24 * GB,
    local_mem=32 * KB,
    max_work_group_size=1024,
    ops_per_second=42e9,
    launch_overhead=80e-6,
)

#: Quad-core Intel Xeon E5520 (the GPU server's host CPU).
XEON_E5520 = DeviceSpec(
    name="Intel Xeon E5520",
    device_type=DeviceType.CPU,
    vendor="Intel",
    compute_units=4,
    clock_mhz=2270,
    global_mem=12 * GB,
    ops_per_second=12e9,
    launch_overhead=60e-6,
)

#: NVIDIA NVS 3100M: the desktop PC's low-end GPU.
NVS_3100M = DeviceSpec(
    name="NVIDIA NVS 3100M",
    device_type=DeviceType.GPU,
    vendor="NVIDIA",
    compute_units=2,
    clock_mhz=1470,
    global_mem=512 * MB,
    local_mem=16 * KB,
    max_work_group_size=512,
    ops_per_second=25e9,
    launch_overhead=15e-6,
)

#: One GPU of an NVIDIA Tesla S1070 (4 GB each, 4 per chassis).
TESLA_C1060 = DeviceSpec(
    name="NVIDIA Tesla T10 (S1070)",
    device_type=DeviceType.GPU,
    vendor="NVIDIA",
    compute_units=30,
    clock_mhz=1300,
    global_mem=4 * GB,
    local_mem=16 * KB,
    max_work_group_size=512,
    ops_per_second=49e9,
    launch_overhead=15e-6,
)


# ----------------------------------------------------------------------
# Hosts (Section V testbeds)
# ----------------------------------------------------------------------
#: One compute node of the Mandelbrot cluster.
WESTMERE_NODE = HostSpec(name="westmere-node", cpu=WESTMERE_NODE_CPU, ram=24 * GB)

#: The desktop PC of the OSEM experiment.
DESKTOP_PC = HostSpec(name="desktop-pc", cpu=XEON_E5520, gpus=(NVS_3100M,), ram=8 * GB)

#: The GPU server: quad-core Xeon + Tesla S1070 (4 GPUs).
GPU_SERVER = HostSpec(
    name="gpu-server",
    cpu=XEON_E5520,
    gpus=(TESLA_C1060,) * 4,
    ram=24 * GB,
)
