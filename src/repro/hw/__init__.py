"""Hardware models: devices, buses, hosts and testbed catalogues.

The catalogue in :mod:`repro.hw.specs` mirrors the three testbeds of the
paper's evaluation (Section V):

* an Infiniband cluster of dual-hexa-core Intel Westmere nodes whose CPUs
  appear as a single OpenCL CPU device (AMD APP SDK),
* a desktop PC with a low-end NVIDIA NVS 3100M GPU,
* a GPU server with a quad-core Xeon E5520 and an NVIDIA Tesla S1070
  (4 GPUs), attached to the desktop over Gigabit Ethernet.

Simulated time is charged through :class:`repro.sim.Timeline` resources:
each compute device, PCIe bus and NIC owns one.
"""

from repro.hw.specs import (
    DeviceSpec,
    DeviceType,
    HostSpec,
    LinkSpec,
    PCIeSpec,
    GIGABIT_ETHERNET,
    INFINIBAND_QDR,
    NVS_3100M,
    PCIE_GEN2_X16,
    TESLA_C1060,
    WESTMERE_NODE_CPU,
    XEON_E5520,
    DESKTOP_PC,
    GPU_SERVER,
    WESTMERE_NODE,
)
from repro.hw.device import ComputeDevice
from repro.hw.pcie import PCIeBus
from repro.hw.node import Host

_CLUSTER_NAMES = (
    "Cluster",
    "make_desktop_and_gpu_server",
    "make_host",
    "make_ib_cpu_cluster",
    "make_multi_client_gpu_server",
)


def __getattr__(name):
    # Cluster builders depend on repro.net; import lazily to avoid a
    # hw <-> net import cycle (net.frames needs hw.specs).
    if name in _CLUSTER_NAMES:
        from repro.hw import cluster as _cluster

        return getattr(_cluster, name)
    raise AttributeError(f"module 'repro.hw' has no attribute {name!r}")

__all__ = [
    "Cluster",
    "ComputeDevice",
    "DESKTOP_PC",
    "DeviceSpec",
    "DeviceType",
    "GIGABIT_ETHERNET",
    "GPU_SERVER",
    "Host",
    "HostSpec",
    "INFINIBAND_QDR",
    "LinkSpec",
    "NVS_3100M",
    "PCIE_GEN2_X16",
    "PCIeBus",
    "PCIeSpec",
    "TESLA_C1060",
    "WESTMERE_NODE",
    "WESTMERE_NODE_CPU",
    "XEON_E5520",
    "make_desktop_and_gpu_server",
    "make_host",
    "make_ib_cpu_cluster",
    "make_multi_client_gpu_server",
]
