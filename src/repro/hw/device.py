"""Compute-device timing model.

A :class:`ComputeDevice` pairs a :class:`~repro.hw.specs.DeviceSpec` with a
:class:`~repro.sim.Timeline`.  Kernel executions and on-device buffer
operations are charged to the timeline; command queues (in
:mod:`repro.ocl.queue`) serialise through it, which is what produces the
interleaving effects of the paper's Section V-C "without device manager"
experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.specs import DeviceSpec
from repro.sim.timeline import Interval, Timeline


class ComputeDevice:
    """One simulated OpenCL device installed in a host.

    Parameters
    ----------
    spec:
        Static description of the device.
    index:
        Position among the host's devices (used for naming only).
    host:
        Back-reference to the owning :class:`~repro.hw.node.Host`
        (set by the host constructor).
    """

    def __init__(self, spec: DeviceSpec, index: int = 0, host: Optional[object] = None) -> None:
        self.spec = spec
        self.index = index
        self.host = host
        self.timeline = Timeline(name=f"{spec.name}#{index}")
        self.allocated_bytes = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def compute_duration(self, ops: float) -> float:
        """Simulated seconds to execute ``ops`` abstract operations."""
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        return self.spec.launch_overhead + ops / self.spec.ops_per_second

    def execute(self, ready: float, ops: float, tag: object = None) -> Interval:
        """Charge a kernel execution; returns the busy interval."""
        return self.timeline.allocate(ready, self.compute_duration(ops), tag)

    def occupy(self, ready: float, duration: float, tag: object = None) -> Interval:
        """Charge an arbitrary on-device duration (e.g. a buffer fill)."""
        return self.timeline.allocate(ready, duration, tag)

    # -- memory accounting ------------------------------------------------
    def allocate_mem(self, nbytes: int) -> None:
        """Track a device allocation; raises MemoryError when the device
        global memory would be exceeded (maps to CL_MEM_OBJECT_ALLOCATION_FAILURE)."""
        if nbytes > self.spec.max_alloc:
            raise MemoryError(
                f"allocation of {nbytes} bytes exceeds CL_DEVICE_MAX_MEM_ALLOC_SIZE "
                f"({self.spec.max_alloc}) on {self.name}"
            )
        if self.allocated_bytes + nbytes > self.spec.global_mem:
            raise MemoryError(
                f"device {self.name} out of global memory "
                f"({self.allocated_bytes}+{nbytes} > {self.spec.global_mem})"
            )
        self.allocated_bytes += nbytes

    def free_mem(self, nbytes: int) -> None:
        self.allocated_bytes = max(0, self.allocated_bytes - nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputeDevice {self.name!r}#{self.index}>"
