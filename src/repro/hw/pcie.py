"""PCIe host<->device bus timing model.

The paper's Section V-D measured a strong asymmetry between writing to a
device and reading back (reads up to 15x slower); :class:`PCIeBus` models
the two directions with separate bandwidths, sharing one bus timeline
(transfers to different devices on the same host serialise, as they do
through a real root complex).
"""

from __future__ import annotations

from repro.hw.specs import PCIeSpec
from repro.sim.timeline import Interval, Timeline


class PCIeBus:
    """Shared host bus with direction-dependent bandwidth."""

    def __init__(self, spec: PCIeSpec, name: str = "") -> None:
        self.spec = spec
        self.timeline = Timeline(name=name or spec.name)

    def write_duration(self, nbytes: int) -> float:
        """Host-to-device transfer time."""
        return self.spec.latency + nbytes / self.spec.write_bandwidth

    def read_duration(self, nbytes: int) -> float:
        """Device-to-host transfer time."""
        return self.spec.latency + nbytes / self.spec.read_bandwidth

    def write(self, ready: float, nbytes: int, tag: object = None) -> Interval:
        return self.timeline.allocate(ready, self.write_duration(nbytes), tag)

    def read(self, ready: float, nbytes: int, tag: object = None) -> Interval:
        return self.timeline.allocate(ready, self.read_duration(nbytes), tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PCIeBus {self.spec.name!r}>"
