"""Testbed builders for the paper's three experimental setups."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hw.node import Host
from repro.hw.specs import (
    DESKTOP_PC,
    GIGABIT_ETHERNET,
    GPU_SERVER,
    HostSpec,
    INFINIBAND_QDR,
    LinkSpec,
    WESTMERE_NODE,
)
from repro.net.network import Network


@dataclass
class Cluster:
    """A network plus a distinguished client host and server hosts."""

    network: Network
    client: Host
    servers: List[Host] = field(default_factory=list)
    extra_clients: List[Host] = field(default_factory=list)

    @property
    def hosts(self) -> List[Host]:
        return [self.client, *self.extra_clients, *self.servers]


def make_host(spec: HostSpec, name: Optional[str] = None) -> Host:
    return Host(spec, name=name)


def make_ib_cpu_cluster(
    n_servers: int,
    link: LinkSpec = INFINIBAND_QDR,
    node_spec: HostSpec = WESTMERE_NODE,
    n_clients: int = 1,
) -> Cluster:
    """The Section V-A Mandelbrot testbed: ``n_servers`` Westmere nodes on
    Infiniband plus a head node acting as the client.

    ``n_clients > 1`` adds further head-side nodes (``client01``,
    ``client02``, …) as extra client hosts — the multi-tenant variant the
    multi-client conformance testbed deploys on (one application per
    client host, all sharing the same daemons)."""
    net = Network(link, name="ib-cluster")
    client = net.add_host(Host(node_spec, name="head"))
    extra = [
        net.add_host(Host(node_spec, name=f"client{i:02d}"))
        for i in range(1, max(n_clients, 1))
    ]
    servers = [net.add_host(Host(node_spec, name=f"node{i:02d}")) for i in range(n_servers)]
    return Cluster(network=net, client=client, servers=servers, extra_clients=extra)


def make_desktop_and_gpu_server(link: LinkSpec = GIGABIT_ETHERNET) -> Cluster:
    """The Section V-B OSEM testbed: a desktop PC with a low-end GPU and a
    4-GPU Tesla server, connected by Gigabit Ethernet."""
    net = Network(link, name="office-net")
    desktop = net.add_host(Host(DESKTOP_PC, name="desktop"))
    server = net.add_host(Host(GPU_SERVER, name="gpuserver"))
    return Cluster(network=net, client=desktop, servers=[server])


def make_multi_client_gpu_server(
    n_clients: int,
    link: LinkSpec = GIGABIT_ETHERNET,
) -> Cluster:
    """The Section V-C device-manager testbed: up to four desktop PCs
    sharing one GPU server over Gigabit Ethernet."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    net = Network(link, name="office-net")
    clients = [net.add_host(Host(DESKTOP_PC, name=f"desktop{i}")) for i in range(n_clients)]
    server = net.add_host(Host(GPU_SERVER, name="gpuserver"))
    return Cluster(network=net, client=clients[0], servers=[server], extra_clients=clients[1:])
