"""Host nodes: devices + PCIe bus (+ a NIC attached by the network layer)."""

from __future__ import annotations

from typing import List, Optional

from repro.hw.device import ComputeDevice
from repro.hw.pcie import PCIeBus
from repro.hw.specs import DeviceType, HostSpec


class Host:
    """A simulated machine.

    Exposes the node's OpenCL-visible devices (CPU device + GPUs), a PCIe
    bus shared by all its devices, and — once the network layer attaches
    one — a NIC.  The CPU device accesses host memory directly (no PCIe
    cost); GPU transfers are charged to the bus.
    """

    def __init__(self, spec: HostSpec, name: Optional[str] = None) -> None:
        self.spec = spec
        self.name = name or spec.name
        self.pcie = PCIeBus(spec.pcie, name=f"{self.name}.pcie")
        self.devices: List[ComputeDevice] = []
        cpu_dev = ComputeDevice(spec.cpu, index=0, host=self)
        self.devices.append(cpu_dev)
        for i, gspec in enumerate(spec.gpus):
            self.devices.append(ComputeDevice(gspec, index=i + 1, host=self))
        self.nic = None  # attached by repro.net.network.Network.add_host

    @property
    def cpu_device(self) -> ComputeDevice:
        return self.devices[0]

    @property
    def gpu_devices(self) -> List[ComputeDevice]:
        return [d for d in self.devices if d.spec.device_type == DeviceType.GPU]

    def device_needs_bus(self, device: ComputeDevice) -> bool:
        """True when host<->device data movement crosses PCIe (GPUs and
        accelerators; the CPU device shares host memory)."""
        return device.spec.device_type != DeviceType.CPU

    def upload_duration(self, device: ComputeDevice, nbytes: int) -> float:
        if self.device_needs_bus(device):
            return self.pcie.write_duration(nbytes)
        # CPU device: a memcpy within host RAM (charge a high-bandwidth copy).
        return nbytes / 8e9

    def download_duration(self, device: ComputeDevice, nbytes: int) -> float:
        if self.device_needs_bus(device):
            return self.pcie.read_duration(nbytes)
        return nbytes / 8e9

    def upload(self, device: ComputeDevice, ready: float, nbytes: int, tag: object = None):
        """Charge a host-to-device transfer; returns the busy interval."""
        if self.device_needs_bus(device):
            return self.pcie.write(ready, nbytes, tag)
        from repro.sim.timeline import Interval

        return Interval(ready, ready + self.upload_duration(device, nbytes), tag)

    def download(self, device: ComputeDevice, ready: float, nbytes: int, tag: object = None):
        """Charge a device-to-host transfer; returns the busy interval."""
        if self.device_needs_bus(device):
            return self.pcie.read(ready, nbytes, tag)
        from repro.sim.timeline import Interval

        return Interval(ready, ready + self.download_duration(device, nbytes), tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name!r} devices={len(self.devices)}>"
