#!/usr/bin/env python
"""Quickstart: one unmodified OpenCL application, two runtimes.

The application function below is written once against the flat ``cl*``
API.  It runs first on a plain single-node OpenCL runtime, then on a
simulated two-server cluster through dOpenCL — the only difference being
the ``cl`` object handed in (plus, for dOpenCL, a server configuration
file, exactly like the paper's Listing 2).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hw import Host
from repro.hw.cluster import make_ib_cpu_cluster
from repro.hw.specs import WESTMERE_NODE
from repro.ocl import CL_DEVICE_TYPE_ALL, CL_MEM_COPY_HOST_PTR, CL_MEM_READ_ONLY, CL_MEM_READ_WRITE
from repro.testbed import deploy_dopencl, native_api_on, server_config_text

SAXPY = """
__kernel void saxpy(const float a, __global const float *x,
                    __global float *y, const int n)
{
    int i = get_global_id(0);
    if (i < n) y[i] = a * x[i] + y[i];
}
"""


def saxpy_app(cl, n=100_000, a=2.5):
    """An unmodified OpenCL application: platform discovery, context,
    buffers, runtime kernel compilation, dispatch, readback."""
    platform = cl.clGetPlatformIDs()[0]
    print(f"  platform: {cl.clGetPlatformInfo(platform, 'NAME')}")
    devices = cl.clGetDeviceIDs(platform, CL_DEVICE_TYPE_ALL)
    for dev in devices:
        print(f"  device:   {cl.clGetDeviceInfo(dev, 'NAME')} "
              f"({cl.clGetDeviceInfo(dev, 'MAX_COMPUTE_UNITS')} CUs)")
    ctx = cl.clCreateContext(devices[:1])
    queue = cl.clCreateCommandQueue(ctx, devices[0])

    rng = np.random.default_rng(7)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    expected = a * x + y

    buf_x = cl.clCreateBuffer(ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR, x.nbytes, x)
    buf_y = cl.clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, y.nbytes, y)
    program = cl.clCreateProgramWithSource(ctx, SAXPY)
    cl.clBuildProgram(program)
    kernel = cl.clCreateKernel(program, "saxpy")
    cl.clSetKernelArg(kernel, 0, np.float32(a))
    cl.clSetKernelArg(kernel, 1, buf_x)
    cl.clSetKernelArg(kernel, 2, buf_y)
    cl.clSetKernelArg(kernel, 3, n)
    event = cl.clEnqueueNDRangeKernel(queue, kernel, ((n + 63) // 64 * 64,))
    data, _ = cl.clEnqueueReadBuffer(queue, buf_y, wait_for=[event])
    result = data.view(np.float32)
    assert np.allclose(result, expected, rtol=1e-6), "saxpy mismatch!"
    print(f"  saxpy OK over {n} elements; simulated time: {cl.now * 1e3:.3f} ms")


def main():
    print("=== 1. native OpenCL on a stand-alone node ===")
    saxpy_app(native_api_on(Host(WESTMERE_NODE, name="workstation")))

    print("\n=== 2. the SAME application through dOpenCL (2 remote servers) ===")
    deployment = deploy_dopencl(make_ib_cpu_cluster(2))
    config = server_config_text(deployment.cluster)
    print("  server config file:\n    " + "\n    ".join(config.splitlines()))
    saxpy_app(deployment.api)

    print("\nSame code, same results — the cluster is one OpenCL platform.")


if __name__ == "__main__":
    main()
