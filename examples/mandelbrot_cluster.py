#!/usr/bin/env python
"""The Fig. 4 scenario in miniature: Mandelbrot on an Infiniband cluster.

Renders the same fractal with the MPI+OpenCL port and with dOpenCL on
2/4/8 CPU-node clusters and prints the stacked init/execution/transfer
timing split. The two images are asserted identical pixel-for-pixel.

Run:  python examples/mandelbrot_cluster.py
"""

import numpy as np

from repro.apps.mandelbrot import (
    mandelbrot_reference,
    render_dopencl,
    render_mpi_opencl,
)
from repro.bench.figures import FIG4_CONFIG as CONFIG
from repro.bench.figures import FIG4_LINK, FIG4_WORKLOAD_SCALE
from repro.hw.cluster import make_ib_cpu_cluster
from repro.testbed import deploy_dopencl


def ascii_preview(image, cols=72, rows=24):
    """Terminal rendering of the fractal."""
    h, w = image.shape
    chars = " .:-=+*#%@"
    ys = (np.arange(rows) * h) // rows
    xs = (np.arange(cols) * w) // cols
    sampled = image[np.ix_(ys, xs)].astype(float) / image.max()
    return "\n".join("".join(chars[int(v * (len(chars) - 1))] for v in row) for row in sampled)


def main():
    reference = mandelbrot_reference(CONFIG)
    print(ascii_preview(reference))
    print(f"\n{'devices':>8} {'variant':>12} {'init':>9} {'exec':>9} {'transfer':>9} {'total':>9}")
    for n in (2, 4, 8):
        cluster = make_ib_cpu_cluster(n, link=FIG4_LINK)
        mpi = render_mpi_opencl(
            cluster.network, cluster.servers, CONFIG, workload_scale=FIG4_WORKLOAD_SCALE
        )
        assert np.array_equal(mpi.image, reference)
        deployment = deploy_dopencl(
            make_ib_cpu_cluster(n, link=FIG4_LINK), workload_scale=FIG4_WORKLOAD_SCALE
        )
        dcl = render_dopencl(deployment.api, CONFIG)
        assert np.array_equal(dcl.image, reference)
        for label, r in (("MPI+OpenCL", mpi), ("dOpenCL", dcl)):
            t = r.timings
            print(f"{n:>8} {label:>12} {t.initialization:>9.4f} {t.execution:>9.4f} "
                  f"{t.transfer:>9.4f} {t.total:>9.4f}")
    print("\nBoth versions produce identical images; dOpenCL needed no code changes,")
    print("only a server list file (paper Listing 2).")


if __name__ == "__main__":
    main()
