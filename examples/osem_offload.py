#!/usr/bin/env python
"""The Fig. 5 scenario: PET reconstruction offloaded to a GPU server.

A desktop PC with a low-end GPU reconstructs a synthetic PET phantom
three ways:

1. locally, on its NVS 3100M;
2. through dOpenCL, transparently offloading to the 4-GPU Tesla server
   over Gigabit Ethernet — same application code;
3. for reference, directly on the server with its native runtime.

Run:  python examples/osem_offload.py
"""

import numpy as np

from repro.apps.osem import ListModeOSEM, disk_phantom, generate_events
from repro.bench.figures import OSEM_LINK, OSEM_WORKLOAD_SCALE
from repro.hw.cluster import make_desktop_and_gpu_server
from repro.ocl import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl, native_api_on

IMAGE_SIZE = 48
N_EVENTS = 10000
ITERATIONS = 3

# Rescale the reduced-size workload to paper magnitudes (EXPERIMENTS.md):
# kernel costs x4000, network scaled to match the paper's 3D volumes.
SCALE = OSEM_WORKLOAD_SCALE


def reconstruct(cl, label):
    gpus = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)
    print(f"\n--- {label}: {len(gpus)} GPU(s) ---")
    phantom = disk_phantom(IMAGE_SIZE, disks=[(0.0, 0.0, 0.5, 1.0), (-0.2, 0.25, 0.15, 6.0)])
    events = generate_events(phantom, N_EVENTS, seed=11)
    osem = ListModeOSEM(cl, gpus, image_size=IMAGE_SIZE, n_subsets=2, n_samples=48)
    result = osem.run(events, n_iterations=ITERATIONS)
    corr = np.corrcoef(result.image.ravel(), phantom.ravel())[0, 1]
    print(f"  mean iteration time: {result.mean_iteration_time:8.3f} s (simulated, paper-rescaled)")
    print(f"  setup time:          {result.setup_time:8.3f} s (simulated, paper-rescaled)")
    print(f"  image/phantom correlation after {ITERATIONS} iterations: {corr:.3f}")
    return result


def main():
    # 1. Desktop PC, local GPU, plain OpenCL.
    desktop_api = native_api_on(
        make_desktop_and_gpu_server(link=OSEM_LINK).client, workload_scale=SCALE
    )
    local = reconstruct(desktop_api, "Desktop PC using OpenCL (NVS 3100M)")

    # 2. Desktop PC -> GPU server through dOpenCL (unmodified code).
    deployment = deploy_dopencl(make_desktop_and_gpu_server(link=OSEM_LINK), workload_scale=SCALE)
    remote = reconstruct(deployment.api, "Desktop PC using dOpenCL (remote Tesla S1070)")

    # 3. Server native, for the trade-off comparison.
    server_api = native_api_on(
        make_desktop_and_gpu_server(link=OSEM_LINK).servers[0], workload_scale=SCALE
    )
    native = reconstruct(server_api, "Server using native OpenCL")

    speedup = local.mean_iteration_time / remote.mean_iteration_time
    tax = remote.mean_iteration_time - native.mean_iteration_time
    print(f"\ndOpenCL offload speedup over the local GPU: {speedup:.2f}x")
    print(f"Data-transfer tax vs running on the server:  {tax:.3f} s/iteration")
    print("(the paper measured 3.75x and attributed the residual gap to transfers)")

    np.testing.assert_allclose(remote.image, native.image, rtol=1e-3, atol=1e-5)
    print("Remote and server-native reconstructions are numerically identical.")


if __name__ == "__main__":
    main()
