#!/usr/bin/env python
"""The Fig. 6 scenario: four clients share one GPU server.

With the device manager each client leases its own GPU (execution time
stays flat); without it, every client naively picks the first device and
the runs serialise on that one GPU.

Run:  python examples/device_manager_sharing.py
"""

import numpy as np

from repro.apps.mandelbrot import MandelbrotConfig, render_dopencl
from repro.hw.cluster import make_multi_client_gpu_server
from repro.ocl import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl

CONFIG = MandelbrotConfig(width=320, height=240, max_iter=120)

GPU_REQUEST_XML = """
<devmngr>gpuserver</devmngr>
<devices>
  <device>
    <attribute name="TYPE">GPU</attribute>
  </device>
</devices>
"""

N_CLIENTS = 4


def run(managed: bool):
    label = "WITH device manager" if managed else "WITHOUT device manager"
    print(f"\n--- {N_CLIENTS} concurrent clients, {label} ---")
    cluster = make_multi_client_gpu_server(N_CLIENTS)
    deployment = deploy_dopencl(
        cluster,
        managed=managed,
        devmgr_config_texts=[GPU_REQUEST_XML] * N_CLIENTS if managed else None,
        n_clients=N_CLIENTS,
        workload_scale=500.0,
    )
    totals = []
    for i, api in enumerate(deployment.apis):
        result = render_dopencl(api, CONFIG, device_type=CL_DEVICE_TYPE_GPU, n_devices=1)
        totals.append(result.timings.total)
        device = api.clGetDeviceIDs(api.clGetPlatformIDs()[0], CL_DEVICE_TYPE_GPU)[0]
        print(f"  client {i}: device #{device.remote_id:<2} total {result.timings.total:7.3f} s "
              f"(exec {result.timings.execution:6.3f} s)")
    print(f"  average {np.mean(totals):.3f} s; spread {max(totals) - min(totals):.3f} s")
    if managed:
        manager = deployment.device_manager
        print(f"  manager: {len(manager.leases)} active leases, "
              f"{len(manager.free)} devices still free")
    return float(np.mean(totals))


def main():
    with_dm = run(managed=True)
    without_dm = run(managed=False)
    print(f"\nWithout the device manager the average run takes "
          f"{without_dm / with_dm:.1f}x longer — all four applications were "
          f"interleaved on the same GPU (paper: 'up to 4 times longer').")


if __name__ == "__main__":
    main()
