#!/usr/bin/env python
"""The Fig. 7/8 scenario: data-transfer costs and network efficiency.

Measures buffer write/read times from a remote dOpenCL client (Gigabit
Ethernet + PCIe) against the server-local PCIe path, then sweeps transfer
sizes to show dOpenCL's efficiency approaching the iperf line.

Run:  python examples/bandwidth_probe.py
"""

from repro.apps.bandwidth import measure_transfers
from repro.hw.cluster import make_desktop_and_gpu_server
from repro.hw.specs import GIGABIT_ETHERNET
from repro.net.iperf import run_iperf
from repro.ocl import CL_DEVICE_TYPE_GPU
from repro.testbed import deploy_dopencl, native_api_on

MB = 1 << 20


def main():
    # Fig. 7: 1 GB to/from the Tesla, locally vs over the network.
    nbytes = 1024 * MB
    server_api = native_api_on(make_desktop_and_gpu_server().servers[0])
    (pcie,) = measure_transfers(server_api, [nbytes], device_type=CL_DEVICE_TYPE_GPU)
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    (gige,) = measure_transfers(deployment.api, [nbytes], device_type=CL_DEVICE_TYPE_GPU)

    print("Transferring 1024 MB to/from the first GPU (simulated seconds):")
    print(f"  {'path':<18} {'write':>9} {'read':>9}")
    print(f"  {'PCI Express':<18} {pcie.write_seconds:>9.3f} {pcie.read_seconds:>9.3f}")
    print(f"  {'Gigabit Ethernet':<18} {gige.write_seconds:>9.3f} {gige.read_seconds:>9.3f}")
    print(f"  -> write {gige.write_seconds / pcie.write_seconds:.1f}x slower over the network "
          f"(paper: ~50x), read {gige.read_seconds / pcie.read_seconds:.1f}x (paper: ~4.5x)")

    # Fig. 8: efficiency vs chunk size against iperf.
    cluster = make_desktop_and_gpu_server()
    iperf = run_iperf(cluster.network, cluster.client, cluster.servers[0])
    iperf_eff = iperf.efficiency(GIGABIT_ETHERNET.bandwidth)
    print(f"\niperf effective bandwidth: {iperf.bandwidth / 1e6:.1f} MB/s "
          f"({iperf_eff * 100:.1f}% of the theoretical 125 MB/s)")
    print(f"  {'size':>8} {'write eff':>10}")
    deployment = deploy_dopencl(make_desktop_and_gpu_server())
    sizes = [MB * (4**k) for k in range(6)]  # 1 MB .. 1 GB
    for sample in measure_transfers(deployment.api, sizes, device_type=CL_DEVICE_TYPE_GPU):
        eff = sample.write_efficiency(GIGABIT_ETHERNET.bandwidth)
        bar = "#" * int(eff * 40)
        print(f"  {sample.nbytes // MB:>6}MB {eff * 100:>9.1f}% {bar}")
    print("Efficiency approaches (but never exceeds) the iperf line — the")
    print("overhead introduced by dOpenCL itself is small (paper Section V-D).")


if __name__ == "__main__":
    main()
