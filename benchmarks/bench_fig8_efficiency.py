"""E5 — Fig. 8: dOpenCL transfer efficiency vs the iperf reference line.

Paper claims checked:
* efficiency grows monotonically with transfer size;
* large transfers approach the iperf effective bandwidth (~86% of the
  theoretical 125 MB/s) without exceeding it — "the overhead introduced
  by dOpenCL itself is quite small".
"""

import pytest

from repro.bench.figures import fig8_efficiency


@pytest.mark.benchmark(group="fig8")
def test_fig8_transfer_efficiency(benchmark, record_saver):
    record = benchmark.pedantic(fig8_efficiency, rounds=1, iterations=1)
    record_saver(record)

    write_effs = record.column("write_efficiency")
    iperf = record.rows[0]["iperf_efficiency"]

    # iperf measures ~85% of the theoretical rate (the paper's 86% line).
    assert iperf == pytest.approx(0.85, abs=0.02)

    # Monotone non-decreasing efficiency with size.
    for a, b in zip(write_effs, write_effs[1:]):
        assert b >= a - 1e-9

    # Large transfers come within a few percent of iperf, never above it.
    assert write_effs[-1] > iperf - 0.05
    assert all(e <= iperf + 1e-9 for e in write_effs)

    # Small transfers pay proportionally more protocol overhead.
    assert write_effs[0] < write_effs[-1]
