"""E1 — Fig. 4: Mandelbrot scalability, dOpenCL vs MPI+OpenCL.

Paper claims checked:
* both versions scale well from 2 to 16 devices;
* dOpenCL introduces only a moderate, roughly fixed overhead;
* the overhead sits in initialization and data transfer, not execution.
"""

import pytest

from repro.bench.figures import fig4_mandelbrot


@pytest.mark.benchmark(group="fig4")
def test_fig4_mandelbrot_scalability(benchmark, record_saver):
    record = benchmark.pedantic(fig4_mandelbrot, rounds=1, iterations=1)
    record_saver(record)

    mpi = {r["devices"]: r for r in record.select(variant="MPI+OpenCL")}
    dcl = {r["devices"]: r for r in record.select(variant="dOpenCL")}

    # Both versions scale well: 2 -> 16 devices gives > 5x.
    for rows in (mpi, dcl):
        assert rows[2]["total"] / rows[16]["total"] > 5.0

    for n in (2, 4, 8, 16):
        # Execution segments match: same kernels on the same devices.
        assert dcl[n]["exec"] == pytest.approx(mpi[n]["exec"], rel=0.05)
        # dOpenCL costs more overall...
        assert dcl[n]["total"] > mpi[n]["total"]
        # ...but the overhead is moderate (well under 10% of the runtime).
        assert dcl[n]["total"] < mpi[n]["total"] * 1.10
        # A substantial part of the overhead sits in init + transfer (the
        # rest is call-forwarding round trips inside the exec segment).
        overhead = dcl[n]["total"] - mpi[n]["total"]
        non_exec = (dcl[n]["init"] - mpi[n]["init"]) + (dcl[n]["transfer"] - mpi[n]["transfer"])
        assert non_exec > 0.3 * overhead

    # The overhead is roughly fixed (does not scale with device count).
    overheads = [dcl[n]["total"] - mpi[n]["total"] for n in (2, 4, 8, 16)]
    assert max(overheads) < 0.2  # seconds, against ~2-17 s totals
