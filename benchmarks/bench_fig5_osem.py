"""E2 — Fig. 5: list-mode OSEM mean iteration runtime.

Paper claims checked:
* offloading to the remote GPU server through dOpenCL beats the local
  low-end GPU by ~3.75x (15.7 s vs 4.2 s in the paper);
* the trade-off vs running natively on the server is the data-transfer
  cost per iteration.
"""

import pytest

from repro.bench.figures import fig5_osem


@pytest.mark.benchmark(group="fig5")
def test_fig5_osem_offload(benchmark, record_saver):
    record = benchmark.pedantic(fig5_osem, rounds=1, iterations=1)
    record_saver(record)

    rows = {r["configuration"].split(" using ")[1].split(" (")[0]: r for r in record.rows}
    local = record.rows[0]["mean_iteration"]
    offload = record.rows[1]["mean_iteration"]
    native = record.rows[2]["mean_iteration"]

    # The local low-end GPU is the slowest by far (paper: 15.7 s).
    assert local > 10.0
    # dOpenCL offload speedup ~3.75x (we accept 3x-5x).
    assert 3.0 < local / offload < 5.0
    # Server-native is fastest; the gap to dOpenCL is the transfer tax.
    assert native < offload
    transfer_tax = offload - native
    assert 0.5 < transfer_tax < 4.0  # paper: ~2.2 s/iteration
