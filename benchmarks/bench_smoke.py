"""Perf smoke — batched call forwarding counters (fast; tier-1 budget).

Unlike the figure benchmarks this target runs a miniature workload, so it
can gate every change: it applies the shared smoke gate
(:func:`repro.bench.smoke.assert_smoke_record`) and records the counters
to ``benchmarks/results/bench_smoke.json`` and ``BENCH_smoke.json``.
"""

import pytest

from repro.bench.smoke import assert_smoke_record, bench_smoke, save_smoke_json


@pytest.mark.benchmark(group="smoke")
def test_bench_smoke_counters(benchmark, record_saver):
    record = benchmark.pedantic(bench_smoke, rounds=1, iterations=1)
    record_saver(record)
    path = save_smoke_json(record)
    print(f"[headline counters saved to {path}]")
    assert_smoke_record(record)
