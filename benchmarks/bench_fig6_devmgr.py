"""E3 — Fig. 6: the device manager under 1-4 concurrent clients.

Paper claims checked:
* with the device manager, execution time stays flat as clients are
  scheduled onto different GPUs;
* the device manager adds only a small, constant initialization overhead;
* without it, all clients land on one device: runs take up to ~4x longer
  and their runtimes differ considerably between instances.
"""

import pytest

from repro.bench.figures import fig6_device_manager


@pytest.mark.benchmark(group="fig6")
def test_fig6_device_manager(benchmark, record_saver):
    record = benchmark.pedantic(fig6_device_manager, rounds=1, iterations=1)
    record_saver(record)

    with_dm = {r["clients"]: r for r in record.select(devmgr="with")}
    without = {r["clients"]: r for r in record.select(devmgr="without")}

    # Execution time roughly flat with the DM (different GPUs per
    # client).  The asynchronous batched forwarding pipeline removed the
    # init-phase serialisation that used to stagger the clients, so they
    # now genuinely overlap and their finish/readback traffic contends
    # for the one server NIC (rescaled to 1/100 GigE, so transfers are
    # ~20% of compute here); allow that contention, but nothing device-
    # shaped (the without-DM runs below grow several times over).
    execs = [with_dm[n]["exec"] for n in (1, 2, 3, 4)]
    assert max(execs) / min(execs) < 1.25

    # DM overhead for a single client is small and constant.
    assert abs(with_dm[1]["total"] - without[1]["total"]) < 0.1

    # Init grows with client count (more management objects per server).
    assert with_dm[4]["init"] > with_dm[1]["init"]

    # Without the DM, contention piles up on one device...
    assert without[4]["exec"] > 1.5 * with_dm[4]["exec"]
    # ...the slowest instance runs 2-4x longer than a managed run...
    assert 2.0 < without[4]["max_total"] / with_dm[4]["total"] < 5.0
    # ...and instance runtimes differ considerably (paper's observation).
    assert without[4]["spread"] > 4 * with_dm[4]["spread"] or without[4]["spread"] > 1.0
