"""Shared fixtures for the figure-reproduction benchmarks."""

import pytest


@pytest.fixture
def record_saver():
    """Save an ExperimentRecord and echo its table to stdout."""
    from repro.bench.harness import format_table, save_record

    def _save(record):
        path = save_record(record)
        print()
        print(format_table(record))
        print(f"[saved to {path}]")
        return record

    return _save
