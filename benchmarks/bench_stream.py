"""Streaming bench — double-buffered deferred-read overlap (tier-1 budget).

Runs the Mandelbrot zoom three ways (pipelined / serial ablation /
compute-only calibration), applies the shared stream gate
(:func:`repro.bench.stream.assert_stream_record`) and records the
headline numbers to ``benchmarks/results/bench_stream.json`` and
``BENCH_stream.json``.
"""

import pytest

from repro.bench.stream import assert_stream_record, bench_stream, save_stream_json


@pytest.mark.benchmark(group="stream")
def test_bench_stream_overlap(benchmark, record_saver):
    record = benchmark.pedantic(bench_stream, rounds=1, iterations=1)
    record_saver(record)
    path = save_stream_json(record)
    print(f"[headline numbers saved to {path}]")
    assert_stream_record(record)
