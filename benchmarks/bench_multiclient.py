"""Perf smoke — multi-tenant contention sweep (fast; tier-1 budget).

The multi-client counterpart of ``bench_smoke``/``bench_osem``: 1, 8,
64 and 256 tenants share one GPU server, and the headline numbers
(aggregate throughput, p99 sync-point latency, device-group fairness
ratio, shared decode-cache hits) land in ``BENCH_multiclient.json``.
Applies the shared gate
(:func:`repro.bench.multiclient.assert_multiclient_record`).
"""

import pytest

from repro.bench.multiclient import (
    assert_multiclient_record,
    bench_multiclient,
    save_multiclient_json,
)


@pytest.mark.benchmark(group="smoke")
def test_bench_multiclient_counters(benchmark, record_saver):
    record = benchmark.pedantic(bench_multiclient, rounds=1, iterations=1)
    record_saver(record)
    path = save_multiclient_json(record)
    print(f"[headline counters saved to {path}]")
    assert_multiclient_record(record)
