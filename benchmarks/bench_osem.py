"""Perf smoke — OSEM reply-cache payoff (fast; tier-1 budget).

The repeated-arg counterpart of ``bench_smoke``: list-mode OSEM re-binds
identical kernel arguments every subset of every iteration, so the
daemon reply/decode caches answer nearly all of its steady-state command
traffic.  Applies the shared gate
(:func:`repro.bench.osem.assert_osem_record`) and records the headline
counters to ``benchmarks/results/bench_osem.json`` and ``BENCH_osem.json``.
"""

import pytest

from repro.bench.osem import assert_osem_record, bench_osem, save_osem_json


@pytest.mark.benchmark(group="smoke")
def test_bench_osem_counters(benchmark, record_saver):
    record = benchmark.pedantic(bench_osem, rounds=1, iterations=1)
    record_saver(record)
    path = save_osem_json(record)
    print(f"[headline counters saved to {path}]")
    assert_osem_record(record)
