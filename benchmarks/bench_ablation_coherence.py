"""A1 — ablation: MSI (client-mediated) vs MOSI (server-to-server).

Section III-F predicts that direct server-to-server synchronisation uses
"the available communication bandwidth more efficiently" — the MOSI
extension should clearly beat client-mediated MSI when a buffer
ping-pongs between kernels on different servers.
"""

import pytest

from repro.bench.figures import ablation_coherence


@pytest.mark.benchmark(group="ablation")
def test_ablation_msi_vs_mosi(benchmark, record_saver):
    record = benchmark.pedantic(ablation_coherence, rounds=1, iterations=1)
    record_saver(record)

    msi = record.select(protocol="MSI")[0]["total_time"]
    mosi = record.select(protocol="MOSI")[0]["total_time"]
    # MOSI replaces two client-mediated hops with one direct hop.
    assert mosi < msi
    assert msi / mosi > 1.5
