"""A2 — ablation: device-manager scheduling strategies (Section IV).

The paper mentions "sophisticated scheduling strategies" without
evaluating them; this ablation shows where they differ: best-fit keeps
scarce big devices free for demanding requests, round-robin balances
server load.
"""

import pytest

from repro.bench.figures import ablation_scheduling


@pytest.mark.benchmark(group="ablation")
def test_ablation_scheduling_strategies(benchmark, record_saver):
    record = benchmark.pedantic(ablation_scheduling, rounds=1, iterations=1)
    record_saver(record)

    rows = {r["strategy"]: r for r in record.rows}
    # Best-fit satisfies the whole request stream; first-fit burns the big
    # device on an early small request and fails the big request.
    assert rows["best_fit"]["satisfied"] == rows["best_fit"]["out_of"]
    assert rows["first_fit"]["satisfied"] < rows["first_fit"]["out_of"]
    # Best-fit also ends up with balanced server load here.
    assert rows["best_fit"]["balance"] <= rows["first_fit"]["balance"]
