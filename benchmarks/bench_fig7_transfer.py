"""E4 — Fig. 7: 1024 MB over Gigabit Ethernet vs PCI Express.

Paper claims checked:
* writing over the network is ~50x slower than over PCIe;
* reading is only ~4.5x slower (device readback is slow anyway — the
  paper measured reads up to 15x slower than writes on the device path).
"""

import pytest

from repro.bench.figures import fig7_transfer


@pytest.mark.benchmark(group="fig7")
def test_fig7_gige_vs_pcie(benchmark, record_saver):
    record = benchmark.pedantic(fig7_transfer, rounds=1, iterations=1)
    record_saver(record)

    pcie = record.select(path="PCI Express")[0]
    gige = record.select(path="Gigabit Ethernet")[0]

    write_ratio = gige["write"] / pcie["write"]
    read_ratio = gige["read"] / pcie["read"]
    assert 40 < write_ratio < 60  # paper: "up to 50 times slower"
    assert 3.5 < read_ratio < 5.5  # paper: "about 4.5 times slower"

    # The PCIe read/write asymmetry itself (paper: up to 15x).
    assert 10 < pcie["read"] / pcie["write"] < 20
